#include "wire/codec.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/message.hpp"
#include "core/monitor.hpp"
#include "overlay/cyclon.hpp"
#include "overlay/hyparview.hpp"
#include "overlay/neem.hpp"
#include "pull/pull_gossip.hpp"
#include "rank/rank_estimator.hpp"
#include "tree/tree_multicast.hpp"

namespace esm::wire {
namespace {

TEST(ByteBuffer, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  const auto bytes = w.bytes();
  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  r.expect_end();
}

TEST(ByteBuffer, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(ByteBuffer, ReaderDetectsTruncation) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_THROW(r.u16(), DecodeError);
}

TEST(ByteBuffer, ExpectEndDetectsTrailing) {
  ByteWriter w;
  w.u32(1);
  ByteReader r(w.bytes());
  r.u16();
  EXPECT_THROW(r.expect_end(), DecodeError);
}

TEST(ByteBuffer, PatchU32) {
  ByteWriter w;
  w.u32(0);
  w.u32(9);
  w.patch_u32(0, 0xCAFEBABE);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u32(), 0xCAFEBABEu);
  EXPECT_EQ(r.u32(), 9u);
  EXPECT_THROW(w.patch_u32(6, 1), DecodeError);
}

TEST(Fnv1a, KnownVectors) {
  // FNV-1a("") = offset basis; FNV-1a("a") = 0xe40c292c.
  EXPECT_EQ(fnv1a({}), 0x811c9dc5u);
  const std::uint8_t a[] = {'a'};
  EXPECT_EQ(fnv1a(a), 0xe40c292cu);
}

template <typename T>
std::shared_ptr<const T> round_trip(const T& packet, NodeId src = 3,
                                    NodeId dst = 9) {
  const auto bytes = encode_packet(packet, src, dst);
  EXPECT_EQ(bytes.size(), encoded_size(packet));
  const Frame frame = decode_packet(bytes);
  EXPECT_EQ(frame.src, src);
  EXPECT_EQ(frame.dst, dst);
  auto typed = std::dynamic_pointer_cast<const T>(frame.packet);
  EXPECT_NE(typed, nullptr);
  return typed;
}

TEST(Codec, DataPacketRoundTrip) {
  core::DataPacket p;
  p.msg.id = MsgId{0xAAAA, 0xBBBB};
  p.msg.origin = 17;
  p.msg.seq = 42;
  p.msg.payload_bytes = 256;
  p.msg.multicast_time = 123456789;
  p.round = 5;
  const auto decoded = round_trip(p);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->msg.id, p.msg.id);
  EXPECT_EQ(decoded->msg.origin, 17u);
  EXPECT_EQ(decoded->msg.seq, 42u);
  EXPECT_EQ(decoded->msg.payload_bytes, 256u);
  EXPECT_EQ(decoded->msg.multicast_time, 123456789);
  EXPECT_EQ(decoded->round, 5u);
}

TEST(Codec, ControlPacketsRoundTrip) {
  core::IHavePacket ihave;
  ihave.ids = {MsgId{1, 2}, MsgId{5, 6}};
  const auto decoded = round_trip(ihave);
  ASSERT_EQ(decoded->ids.size(), 2u);
  EXPECT_EQ(decoded->ids[0], (MsgId{1, 2}));
  EXPECT_EQ(decoded->ids[1], (MsgId{5, 6}));

  core::IWantPacket iwant;
  iwant.id = MsgId{3, 4};
  EXPECT_EQ(round_trip(iwant)->id, (MsgId{3, 4}));

  core::PrunePacket prune;
  prune.id = MsgId{7, 8};
  EXPECT_EQ(round_trip(prune)->id, (MsgId{7, 8}));
}

TEST(Codec, ControlSizesMatchSimulationAccounting) {
  // The simulator bills IHAVE at core::ihave_bytes(n) and IWANT/PRUNE at
  // core::kControlBytes; the real codec must agree, or the bandwidth model
  // lies.
  core::IHavePacket ihave;
  ihave.ids = {MsgId{1, 1}, MsgId{2, 2}, MsgId{3, 3}};
  EXPECT_EQ(encoded_size(ihave), core::ihave_bytes(3));
  core::IWantPacket iwant;
  EXPECT_EQ(encoded_size(iwant), core::kControlBytes);
  core::PrunePacket prune;
  EXPECT_EQ(encoded_size(prune), core::kControlBytes);
}

TEST(Codec, DataSizeIsHeaderPlusMetadataPlusPayload) {
  core::DataPacket p;
  p.msg.payload_bytes = 256;
  // 24 header + 40 message metadata + 256 payload.
  EXPECT_EQ(encoded_size(p), kFrameHeaderBytes + 40 + 256);
}

TEST(Codec, ShuffleRoundTrip) {
  overlay::ShufflePacket p;
  p.is_reply = true;
  p.entries = {{1, 0}, {2, 9}, {300, 77}};
  const auto decoded = round_trip(p);
  ASSERT_EQ(decoded->entries.size(), 3u);
  EXPECT_TRUE(decoded->is_reply);
  EXPECT_EQ(decoded->entries[2].id, 300u);
  EXPECT_EQ(decoded->entries[2].age, 77u);
}

TEST(Codec, PingRoundTrip) {
  core::PingPacket p;
  p.sent_at = 987654321;
  p.is_pong = true;
  const auto decoded = round_trip(p);
  EXPECT_EQ(decoded->sent_at, 987654321);
  EXPECT_TRUE(decoded->is_pong);
}

TEST(Codec, RankGossipRoundTrip) {
  rank::RankGossipPacket p;
  p.samples = {{4, -1.5, 250 * kMillisecond}, {9, 1e9, 0}};
  const auto decoded = round_trip(p);
  ASSERT_EQ(decoded->samples.size(), 2u);
  EXPECT_DOUBLE_EQ(decoded->samples[0].score, -1.5);
  EXPECT_EQ(decoded->samples[0].age, 250 * kMillisecond);
  EXPECT_DOUBLE_EQ(decoded->samples[1].score, 1e9);
  EXPECT_EQ(decoded->samples[1].age, 0);
}

TEST(Codec, RankGossipAgeIsMillisecondGranular) {
  // Sub-millisecond age truncates to the wire's u32 millisecond field.
  rank::RankGossipPacket p;
  p.samples = {{1, 0.5, 1500}};  // 1.5 ms
  const auto decoded = round_trip(p);
  ASSERT_EQ(decoded->samples.size(), 1u);
  EXPECT_EQ(decoded->samples[0].age, 1 * kMillisecond);
}

TEST(Codec, PullPacketsRoundTrip) {
  pull::PullRequestPacket request;
  request.known = {MsgId{1, 1}, MsgId{2, 2}};
  EXPECT_EQ(round_trip(request)->known.size(), 2u);

  pull::PullReplyPacket reply;
  core::AppMessage m;
  m.id = MsgId{5, 5};
  m.origin = 9;
  m.payload_bytes = 64;
  m.multicast_time = 777;
  reply.messages.push_back(m);
  const auto decoded = round_trip(reply);
  ASSERT_EQ(decoded->messages.size(), 1u);
  EXPECT_EQ(decoded->messages[0].id, (MsgId{5, 5}));
  EXPECT_EQ(decoded->messages[0].multicast_time, 777);

  pull::PullAdvertisePacket adv;
  adv.ids = {MsgId{3, 3}};
  EXPECT_EQ(round_trip(adv)->ids.size(), 1u);

  pull::PullFetchPacket fetch;
  fetch.ids = {MsgId{4, 4}};
  EXPECT_EQ(round_trip(fetch)->ids[0], (MsgId{4, 4}));
}

TEST(Codec, HyParViewPacketsRoundTrip) {
  overlay::HpvPacket p;
  p.kind = overlay::HpvPacket::Kind::shuffle;
  p.subject = 42;
  p.ttl = 3;
  p.flag = true;
  p.nodes = {1, 2, 99};
  const auto decoded = round_trip(p);
  EXPECT_EQ(decoded->kind, overlay::HpvPacket::Kind::shuffle);
  EXPECT_EQ(decoded->subject, 42u);
  EXPECT_EQ(decoded->ttl, 3u);
  EXPECT_TRUE(decoded->flag);
  EXPECT_EQ(decoded->nodes, (std::vector<NodeId>{1, 2, 99}));
}

TEST(Codec, NeemPacketsRoundTrip) {
  overlay::NeemPacket p;
  p.kind = overlay::NeemPacket::Kind::shuffle;
  p.addresses = {4, 8, 15};
  const auto decoded = round_trip(p);
  EXPECT_EQ(decoded->kind, overlay::NeemPacket::Kind::shuffle);
  EXPECT_EQ(decoded->addresses, (std::vector<NodeId>{4, 8, 15}));
}

TEST(Codec, DataPacketWithRealContentRoundTrip) {
  core::DataPacket p;
  p.msg.id = MsgId{11, 12};
  const std::vector<std::uint8_t> content{1, 2, 3, 0, 255};
  p.msg.payload_bytes = static_cast<std::uint32_t>(content.size());
  p.msg.data = std::make_shared<const std::vector<std::uint8_t>>(content);
  const auto decoded = round_trip(p);
  ASSERT_NE(decoded->msg.data, nullptr);
  EXPECT_EQ(*decoded->msg.data, content);
  // Simulated (zero) payloads stay weightless after a round trip.
  core::DataPacket sim_only;
  sim_only.msg.payload_bytes = 64;
  EXPECT_EQ(round_trip(sim_only)->msg.data, nullptr);
  // Inconsistent size metadata is an encoding error.
  core::DataPacket bad;
  bad.msg.payload_bytes = 99;
  bad.msg.data = std::make_shared<const std::vector<std::uint8_t>>(content);
  EXPECT_THROW(encode_packet(bad, 0, 1), DecodeError);
}

TEST(Codec, TreePacketsRoundTrip) {
  round_trip(tree::HeartbeatPacket{});
  round_trip(tree::AttachRequestPacket{});
  tree::AttachAcceptPacket accept;
  accept.accepted = true;
  EXPECT_TRUE(round_trip(accept)->accepted);
}

TEST(Codec, RejectsBadMagic) {
  auto bytes = encode_packet(core::IHavePacket{}, 0, 1);
  bytes[0] ^= 0xFF;
  EXPECT_THROW(decode_packet(bytes), DecodeError);
}

TEST(Codec, RejectsBadVersion) {
  auto bytes = encode_packet(core::IHavePacket{}, 0, 1);
  bytes[4] = 99;
  EXPECT_THROW(decode_packet(bytes), DecodeError);
}

TEST(Codec, RejectsCorruptedBody) {
  auto bytes = encode_packet(core::IHavePacket{}, 0, 1);
  bytes.back() ^= 0x01;  // flip a body bit: checksum must catch it
  EXPECT_THROW(decode_packet(bytes), DecodeError);
}

TEST(Codec, RejectsTruncation) {
  const auto bytes = encode_packet(core::IHavePacket{}, 0, 1);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(decode_packet(prefix), DecodeError) << "cut=" << cut;
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  auto bytes = encode_packet(core::IHavePacket{}, 0, 1);
  bytes.push_back(0);
  EXPECT_THROW(decode_packet(bytes), DecodeError);
}

TEST(Codec, RejectsUnknownType) {
  auto bytes = encode_packet(core::IHavePacket{}, 0, 1);
  bytes[5] = 0xEE;  // type tag
  EXPECT_THROW(decode_packet(bytes), DecodeError);
}

TEST(Codec, RandomMutationNeverCrashes) {
  // Property: arbitrary single-byte corruptions either decode to a valid
  // frame (flags are ignored, addressing is unvalidated) or throw
  // DecodeError — never UB, never a crash.
  core::DataPacket p;
  p.msg.id = MsgId{7, 8};
  p.msg.payload_bytes = 32;
  const auto original = encode_packet(p, 1, 2);
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = original;
    bytes[rng.below(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    try {
      (void)decode_packet(bytes);
    } catch (const DecodeError&) {
      // expected for most mutations
    }
  }
}

TEST(Codec, IHaveIdListWireCapBoundary) {
  // The id count travels as a u16: exactly kMaxIHaveIds must round-trip,
  // one more must be refused at encode (the scheduler splits batches at
  // the cap so live traffic never hits the throw).
  core::IHavePacket full;
  full.ids.reserve(core::kMaxIHaveIds);
  for (std::uint64_t i = 0; i < core::kMaxIHaveIds; ++i) {
    full.ids.push_back(MsgId{i, i});
  }
  const auto decoded = round_trip(full);
  ASSERT_EQ(decoded->ids.size(), core::kMaxIHaveIds);
  EXPECT_EQ(decoded->ids.front(), full.ids.front());
  EXPECT_EQ(decoded->ids.back(), full.ids.back());

  core::IHavePacket overflow = full;
  overflow.ids.push_back(MsgId{1, 2});
  EXPECT_THROW(encode_packet(overflow, 0, 1), DecodeError);
}

TEST(Codec, RandomInputNeverCrashes) {
  Rng rng(123);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(128));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    try {
      (void)decode_packet(junk);
    } catch (const DecodeError&) {
    }
  }
}

}  // namespace
}  // namespace esm::wire
