#include "core/monitor.hpp"

#include "core/scheduler.hpp"
#include "core/strategies.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "net/transport.hpp"
#include "overlay/cyclon.hpp"
#include "sim/simulator.hpp"

namespace esm::core {
namespace {

TEST(OracleLatencyMonitor, ReadsModelInMilliseconds) {
  net::ConstantLatencyModel latency(25 * kMillisecond);
  OracleLatencyMonitor monitor(latency);
  EXPECT_DOUBLE_EQ(monitor.metric(0, 1), 25.0);
}

TEST(OracleLatencyMonitor, TracksPerPairValues) {
  net::RandomLatencyModel latency(5, 1000, 90000, 3);
  OracleLatencyMonitor monitor(latency);
  for (NodeId a = 0; a < 5; ++a) {
    for (NodeId b = 0; b < 5; ++b) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(monitor.metric(a, b), to_ms(latency.one_way(a, b)));
    }
  }
}

TEST(DistanceMonitor, EuclideanDistance) {
  DistanceMonitor monitor({{0.0, 0.0}, {3.0, 4.0}, {0.0, 1.0}});
  EXPECT_DOUBLE_EQ(monitor.metric(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(monitor.metric(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(monitor.metric(1, 1), 0.0);
}

struct PingFixture {
  sim::Simulator sim;
  net::ConstantLatencyModel latency{20 * kMillisecond};
  net::Transport transport;
  std::vector<std::unique_ptr<overlay::FullMembershipSampler>> samplers;
  std::vector<std::unique_ptr<PingMonitor>> monitors;

  explicit PingFixture(std::uint32_t n, PingMonitor::Params params = {})
      : transport(sim, latency, n, {}, Rng(5)) {
    for (NodeId id = 0; id < n; ++id) {
      samplers.push_back(std::make_unique<overlay::FullMembershipSampler>(
          transport, id, Rng(100 + id)));
      monitors.push_back(std::make_unique<PingMonitor>(
          sim, transport, id, *samplers[id], params, Rng(200 + id)));
      transport.register_handler(id, [this, id](NodeId src,
                                                const net::PacketPtr& p) {
        monitors[id]->handle_packet(src, p);
      });
    }
  }
};

TEST(PingMonitor, UnknownPeerIsInfinite) {
  PingFixture f(3);
  EXPECT_TRUE(std::isinf(f.monitors[0]->metric(0, 1)));
}

TEST(PingMonitor, RejectsWrongSelf) {
  PingFixture f(3);
  EXPECT_THROW(f.monitors[0]->metric(1, 2), CheckFailure);
}

TEST(PingMonitor, ConvergesToOneWayLatency) {
  PingFixture f(4);
  for (auto& m : f.monitors) m->start();
  f.sim.run_until(30 * kSecond);
  // RTT = 40 ms; the metric is SRTT/2 = 20 ms = the one-way delay.
  for (NodeId a = 0; a < 4; ++a) {
    EXPECT_GE(f.monitors[a]->peers_known(), 3u);
    for (NodeId b = 0; b < 4; ++b) {
      if (a == b) continue;
      EXPECT_NEAR(f.monitors[a]->metric(a, b), 20.0, 0.5);
    }
  }
}

TEST(PingMonitor, EwmaSmoothsJitter) {
  PingMonitor::Params params;
  params.fanout = 3;
  sim::Simulator sim;
  net::ConstantLatencyModel latency(10 * kMillisecond);
  net::TransportOptions opts;
  opts.jitter = 0.3;
  net::Transport transport(sim, latency, 2, opts, Rng(9));
  overlay::FullMembershipSampler s0(transport, 0, Rng(1));
  overlay::FullMembershipSampler s1(transport, 1, Rng(2));
  PingMonitor m0(sim, transport, 0, s0, params, Rng(3));
  PingMonitor m1(sim, transport, 1, s1, params, Rng(4));
  transport.register_handler(0, [&](NodeId src, const net::PacketPtr& p) {
    m0.handle_packet(src, p);
  });
  transport.register_handler(1, [&](NodeId src, const net::PacketPtr& p) {
    m1.handle_packet(src, p);
  });
  m0.start();
  sim.run_until(120 * kSecond);
  // Mean one-way is 10 ms; the smoothed estimate should sit near it even
  // though individual samples vary by +-30%.
  EXPECT_NEAR(m0.metric(0, 1), 10.0, 2.0);
}

TEST(PiggybackMonitor, SmoothsObservedRtts) {
  PiggybackMonitor m(0);
  EXPECT_TRUE(std::isinf(m.metric(0, 5)));
  m.observe(5, 40 * kMillisecond);
  EXPECT_DOUBLE_EQ(m.metric(0, 5), 20.0);  // SRTT/2 in ms
  // New samples move the estimate by alpha = 1/8.
  m.observe(5, 80 * kMillisecond);
  EXPECT_NEAR(m.metric(0, 5), 22.5, 1e-9);
  EXPECT_EQ(m.peers_known(), 1u);
  EXPECT_THROW(m.metric(1, 5), CheckFailure);
}

TEST(PiggybackMonitor, FedByScheduler) {
  // A lazy exchange produces an RTT observation with no extra packets.
  sim::Simulator sim;
  net::ConstantLatencyModel latency(15 * kMillisecond);
  net::Transport transport(sim, latency, 2, {}, Rng(3));
  core::FlatStrategy lazy(0.0, {}, Rng(4));
  PiggybackMonitor monitor(1);
  std::vector<std::unique_ptr<PayloadScheduler>> scheds;
  for (NodeId id = 0; id < 2; ++id) {
    scheds.push_back(std::make_unique<PayloadScheduler>(
        sim, transport, id, lazy,
        [](const AppMessage&, Round, NodeId) {}));
    transport.register_handler(id, [&scheds, id](NodeId src,
                                                 const net::PacketPtr& p) {
      scheds[id]->handle_packet(src, p);
    });
  }
  scheds[1]->set_rtt_observer(
      [&monitor](NodeId peer, SimTime rtt) { monitor.observe(peer, rtt); });
  AppMessage m;
  m.id = MsgId{1, 2};
  m.payload_bytes = 64;
  scheds[0]->l_send(m, 1, 1);  // IHAVE -> IWANT -> MSG
  sim.run();
  // IWANT + MSG = one round trip of 30 ms; metric = one-way 15 ms.
  EXPECT_NEAR(monitor.metric(1, 0), 15.0, 0.1);
}

TEST(PingMonitor, DeadPeerKeepsLastEstimate) {
  PingFixture f(3);
  for (auto& m : f.monitors) m->start();
  f.sim.run_until(10 * kSecond);
  const double before = f.monitors[0]->metric(0, 1);
  f.transport.silence(1);
  f.sim.run_until(30 * kSecond);
  EXPECT_DOUBLE_EQ(f.monitors[0]->metric(0, 1), before);
}

}  // namespace
}  // namespace esm::core
