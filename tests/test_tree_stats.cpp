#include "obs/tree_stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "trace/trace_log.hpp"

namespace esm::obs {
namespace {

using trace::TraceLog;

/// One message: 0 -> 1 (eager), 1 -> 2 (lazy recovery), 1 -> 3 (eager).
TraceLog small_tree_trace() {
  TraceLog log;
  log.record_delivery({1000, 0, 0, 0, 0, 0, true});  // origin
  auto p1 = log.record_payload({1000, 0, 1, 0, true});
  log.set_payload_recv(p1, 1040);
  log.record_delivery({1040, 1, 0, 0, 40, 0, true});
  auto p2 = log.record_payload({1100, 1, 2, 0, false});
  log.set_payload_recv(p2, 1160);
  log.record_delivery({1160, 2, 0, 0, 160, 1, false});
  auto p3 = log.record_payload({1050, 1, 3, 0, true});
  log.set_payload_recv(p3, 1090);
  log.record_delivery({1090, 3, 0, 0, 90, 1, true});
  // A lost duplicate: no recv_time, must not enter the link baseline.
  log.record_payload({1000, 0, 2, 0, true});
  return log;
}

TEST(TreeStats, ReconstructsFirstDeliveryTree) {
  const TreeStats ts = analyze_trees(small_tree_trace());
  EXPECT_EQ(ts.messages, 1u);
  EXPECT_EQ(ts.edges, 3u);
  EXPECT_EQ(ts.eager_edges, 2u);
  EXPECT_EQ(ts.orphan_deliveries, 0u);
  EXPECT_DOUBLE_EQ(ts.eager_hop_share(), 2.0 / 3.0);

  // Interior nodes: 0 (one child) and 1 (two children).
  EXPECT_EQ(ts.interior_nodes, 2u);
  EXPECT_EQ(ts.fanout.count(), 2u);
  EXPECT_EQ(ts.fanout.sum(), 3u);
  ASSERT_GE(ts.eager_children.size(), 2u);
  EXPECT_EQ(ts.eager_children[0], 1u);
  EXPECT_EQ(ts.eager_children[1], 1u);

  // Depths: node 1 at 1, nodes 2 and 3 at 2.
  EXPECT_EQ(ts.depth.count(), 3u);
  EXPECT_EQ(ts.depth.sum(), 5u);
  EXPECT_EQ(ts.max_depth(), 2u);

  // Edge latencies match the delivering transmissions: 40, 60, 40 us.
  EXPECT_EQ(ts.edge_latency_us.count(), 3u);
  EXPECT_EQ(ts.edge_latency_us.sum(), 140u);
  // Link baseline covers the same three arrivals; the lost duplicate
  // payload is excluded.
  EXPECT_EQ(ts.link_latency_us.count(), 3u);
}

TEST(TreeStats, CountsOrphansAndSurvivesV1Traces) {
  // A v1-style trace: deliveries carry no `from` attribution.
  TraceLog log;
  log.record_delivery({1000, 0, 0, 0, 0});
  log.record_delivery({1040, 1, 0, 0, 40});  // from defaults to kInvalidNode
  const TreeStats ts = analyze_trees(log);
  EXPECT_EQ(ts.messages, 1u);
  EXPECT_EQ(ts.edges, 0u);
  EXPECT_EQ(ts.orphan_deliveries, 1u);
}

TEST(TreeStats, JaccardTracksEdgeReuse) {
  TraceLog log;
  // Message 0 and 1 use the identical edge 0->1; message 2 uses 0->2.
  for (std::uint32_t seq = 0; seq < 3; ++seq) {
    const SimTime base = 1000 + 1000 * seq;
    const NodeId child = seq < 2 ? 1 : 2;
    log.record_delivery({base, 0, 0, seq, 0, 0, true});
    log.record_delivery({base + 40, child, 0, seq, 40, 0, true});
  }
  const TreeStats ts = analyze_trees(log);
  EXPECT_EQ(ts.jaccard_pairs, 2u);
  // Pair (0,1): identical -> 1.0; pair (1,2): disjoint -> 0.0.
  EXPECT_DOUBLE_EQ(ts.mean_jaccard(), 0.5);
}

TEST(TreeStats, WindowSelectsByMulticastTime) {
  TraceLog log;
  // Message 0 multicast at t=1000, message 1 at t=5000. A late delivery
  // of message 0 (t=6000) must still be attributed to the first window.
  log.record_delivery({1000, 0, 0, 0, 0, 0, true});
  log.record_delivery({6000, 1, 0, 0, 5000, 0, true});
  log.record_delivery({5000, 0, 0, 1, 0, 0, true});
  log.record_delivery({5040, 2, 0, 1, 40, 0, true});

  TreeStatsOptions first;
  first.window_end = 2000;
  const TreeStats a = analyze_trees(log, first);
  EXPECT_EQ(a.messages, 1u);
  EXPECT_EQ(a.edges, 1u);

  TreeStatsOptions second;
  second.window_start = 2000;
  const TreeStats b = analyze_trees(log, second);
  EXPECT_EQ(b.messages, 1u);
  EXPECT_EQ(b.edges, 1u);

  // The two windows partition the unbounded analysis.
  const TreeStats all = analyze_trees(log);
  EXPECT_EQ(all.messages, a.messages + b.messages);
  EXPECT_EQ(all.edges, a.edges + b.edges);
}

TEST(TreeStats, RankInfoCreditsTopNodes) {
  TraceLog log;
  log.record_delivery({1000, 0, 0, 0, 0, 0, true});
  log.record_delivery({1040, 1, 0, 0, 40, 0, true});
  log.record_delivery({1080, 2, 0, 0, 80, 1, true});

  TreeStatsOptions options;
  options.ranked = {0, 1, 2};  // best first
  options.top_fraction = 0.34;  // exactly node 0
  const TreeStats ts = analyze_trees(log, options);
  EXPECT_TRUE(ts.has_rank_info);
  EXPECT_EQ(ts.interior_nodes, 2u);
  EXPECT_EQ(ts.interior_top_ranked, 1u);   // node 0
  EXPECT_EQ(ts.eager_edges_from_top, 1u);  // the 0->1 edge
}

TEST(TreeStats, MergeMatchesCombinedAnalysis) {
  const TraceLog log = small_tree_trace();
  TreeStats merged = analyze_trees(log);
  merged.merge(analyze_trees(log));
  const TreeStats single = analyze_trees(log);
  EXPECT_EQ(merged.messages, 2 * single.messages);
  EXPECT_EQ(merged.edges, 2 * single.edges);
  EXPECT_EQ(merged.eager_edges, 2 * single.eager_edges);
  EXPECT_EQ(merged.depth.count(), 2 * single.depth.count());
  EXPECT_EQ(merged.depth.sum(), 2 * single.depth.sum());
  EXPECT_DOUBLE_EQ(merged.eager_hop_share(), single.eager_hop_share());
  ASSERT_EQ(merged.eager_children.size(), single.eager_children.size());
  for (std::size_t i = 0; i < merged.eager_children.size(); ++i) {
    EXPECT_EQ(merged.eager_children[i], 2 * single.eager_children[i]);
  }
}

harness::ExperimentConfig structure_config() {
  harness::ExperimentConfig c;
  c.seed = 42;
  c.num_nodes = 100;
  c.num_messages = 80;
  c.overlay_kind = harness::OverlayKind::static_random;
  c.collect_tree_stats = true;
  return c;
}

/// The paper's emergence claim (§6), pinned: under the ranked strategy the
/// dissemination trees concentrate on fast links and top-capacity nodes;
/// under flat gossip they do not. Margins sit well clear of the measured
/// values (ranked link/overlay ratio ~0.80, flat ~0.99; ranked eager
/// concentration ~0.92, flat ~0.14) so the test survives benign drift but
/// fails if the bias signal disappears.
TEST(TreeStats, RankedRunsBiasTreesFlatRunsDoNot) {
  harness::ExperimentConfig ranked_config = structure_config();
  ranked_config.strategy = harness::StrategySpec::make_ranked(0.05);
  const harness::ExperimentResult ranked =
      harness::run_experiment(ranked_config);
  ASSERT_NE(ranked.tree_stats, nullptr);
  const TreeStats& r = *ranked.tree_stats;

  harness::ExperimentConfig flat_config = structure_config();
  flat_config.strategy = harness::StrategySpec::make_flat(1.0);
  const harness::ExperimentResult flat = harness::run_experiment(flat_config);
  ASSERT_NE(flat.tree_stats, nullptr);
  const TreeStats& f = *flat.tree_stats;

  // Both runs deliver everything and reconstruct full trees.
  const std::uint64_t expect_edges =
      static_cast<std::uint64_t>(ranked_config.num_messages) *
      (ranked_config.num_nodes - 1);
  EXPECT_EQ(r.edges, expect_edges);
  EXPECT_EQ(f.edges, expect_edges);
  EXPECT_EQ(r.orphan_deliveries, 0u);
  EXPECT_EQ(f.orphan_deliveries, 0u);

  ASSERT_GT(r.overlay_mean_link_us, 0.0);
  ASSERT_GT(f.overlay_mean_link_us, 0.0);

  // Ranked: payload traffic rides links well below the all-pairs overlay
  // baseline — the tree prefers fast links.
  EXPECT_LT(r.mean_edge_latency_ms(), 0.9 * r.overlay_mean_link_ms());
  EXPECT_LT(r.mean_link_latency_ms(), 0.9 * r.overlay_mean_link_ms());
  // Flat: payload sends sample the overlay without bias.
  EXPECT_GT(f.mean_link_latency_ms(), 0.95 * f.overlay_mean_link_ms());

  // Ranked: eager forwarding concentrates on the top-ranked nodes (the
  // strategy's best set is 5% of nodes); flat spreads it out.
  EXPECT_TRUE(r.has_rank_info);
  EXPECT_GT(r.eager_from_top_share(), 0.6);
  EXPECT_GT(r.eager_child_concentration(0.05), 0.6);
  EXPECT_LT(f.eager_child_concentration(0.05), 0.3);

  // Ranked trees reuse edges message-to-message (a stable backbone);
  // flat trees re-randomize.
  EXPECT_GT(r.mean_jaccard(), f.mean_jaccard() + 0.03);
}

/// --tree-stats output is part of the determinism contract: analysis,
/// kv rendering and the metrics JSON must be byte-identical at any job
/// count.
TEST(TreeStats, OutputIdenticalAcrossJobCounts) {
  harness::ExperimentConfig base = structure_config();
  base.num_nodes = 40;
  base.num_messages = 30;
  base.strategy = harness::StrategySpec::make_ranked(0.1);
  base.collect_metrics = true;

  std::vector<harness::ExperimentConfig> configs(3, base);
  for (std::size_t i = 0; i < configs.size(); ++i) configs[i].seed += i;

  auto render = [&](unsigned jobs) {
    const auto results = harness::run_experiments(configs, jobs);
    std::string out;
    obs::RunMetrics metrics;
    std::vector<std::vector<stats::PhaseReport>> phase_runs;
    bool first = true;
    for (const auto& res : results) {
      EXPECT_NE(res.tree_stats, nullptr);
      out += harness::format_tree_kv(*res.tree_stats);
      phase_runs.push_back(res.phase_reports);
      if (first) {
        metrics = *res.metrics;
        first = false;
      } else {
        metrics.merge(*res.metrics);
      }
    }
    out += harness::format_metrics_json(metrics, phase_runs);
    return out;
  };

  const std::string serial = render(1);
  const std::string parallel = render(3);
  EXPECT_EQ(serial, parallel);
  // The JSON actually carries the tree metrics.
  EXPECT_NE(serial.find("\"tree.edges\""), std::string::npos);
  EXPECT_NE(serial.find("\"tree.jaccard_permille\""), std::string::npos);
}

/// Tree reconstruction under interleaved multi-source traffic: k
/// publishers inject concurrently, so payloads of different messages
/// overlap on the wire — per-message trees must still come out complete
/// and byte-identical at any --jobs count.
TEST(TreeStats, InterleavedMultiSourceTrafficAtAnyJobs) {
  harness::ExperimentConfig base = structure_config();
  base.num_nodes = 40;
  base.collect_metrics = true;
  load::WorkloadSpec wl;
  wl.duration = 5 * kSecond;
  for (int p = 0; p < 4; ++p) {
    load::PublisherSpec pub;
    pub.arrival = p % 2 == 0 ? load::ArrivalKind::poisson
                             : load::ArrivalKind::fixed_rate;
    pub.rate = 8.0;
    wl.publishers.push_back(pub);
  }
  base.workload = wl;

  std::vector<harness::ExperimentConfig> configs(3, base);
  for (std::size_t i = 0; i < configs.size(); ++i) configs[i].seed += i;

  auto render = [&](unsigned jobs) {
    const auto results = harness::run_experiments(configs, jobs);
    std::string out;
    for (const auto& res : results) {
      EXPECT_NE(res.tree_stats, nullptr);
      // Every injected multicast produced a tree, and concurrent sources
      // really interleaved (offered count matches the tree count).
      EXPECT_EQ(res.tree_stats->messages, res.offered_msgs);
      EXPECT_GT(res.offered_msgs, 40u);  // ~4 pubs * 8/s * 5s
      out += harness::format_tree_kv(*res.tree_stats);
      out += harness::format_result_kv(res);
    }
    return out;
  };

  const std::string serial = render(1);
  const std::string parallel = render(3);
  EXPECT_EQ(serial, parallel);
}

/// In-process analysis and the offline esm_trees path (CSV round-trip,
/// no topology) agree on every trace-derived metric.
TEST(TreeStats, OfflineCsvAnalysisMatchesInProcess) {
  harness::ExperimentConfig c = structure_config();
  c.num_nodes = 40;
  c.num_messages = 30;
  c.strategy = harness::StrategySpec::make_ranked(0.1);
  c.collect_trace = true;
  const harness::ExperimentResult result = harness::run_experiment(c);
  ASSERT_NE(result.trace, nullptr);
  ASSERT_NE(result.tree_stats, nullptr);

  std::ostringstream csv;
  result.trace->write_csv(csv);
  std::istringstream in(csv.str());
  const TraceLog parsed = TraceLog::read_csv(in);
  const TreeStats offline = analyze_trees(parsed);

  const TreeStats& live = *result.tree_stats;
  EXPECT_EQ(offline.messages, live.messages);
  EXPECT_EQ(offline.edges, live.edges);
  EXPECT_EQ(offline.eager_edges, live.eager_edges);
  EXPECT_EQ(offline.edge_latency_us.sum(), live.edge_latency_us.sum());
  EXPECT_EQ(offline.link_latency_us.sum(), live.link_latency_us.sum());
  EXPECT_EQ(offline.depth.sum(), live.depth.sum());
  EXPECT_DOUBLE_EQ(offline.mean_jaccard(), live.mean_jaccard());
}

}  // namespace
}  // namespace esm::obs
