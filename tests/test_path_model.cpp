// Tests for the pluggable PathModel: the on-demand attach-router model
// must be indistinguishable from the dense all-pairs matrix at every
// query — point latencies/hops, aggregate statistics, closeness sums,
// and whole-experiment output — while staying inside its byte budget.
#include "net/path_model.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

namespace esm::net {
namespace {

TopologyParams small_params() {
  TopologyParams p;
  p.num_underlay_vertices = 400;
  p.num_transit_domains = 3;
  p.transit_per_domain = 6;
  p.num_clients = 80;
  return p;
}

void expect_models_agree(const PathModel& dense, const PathModel& lazy) {
  ASSERT_EQ(dense.num_clients(), lazy.num_clients());
  const std::uint32_t n = dense.num_clients();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      ASSERT_EQ(dense.latency(a, b), lazy.latency(a, b))
          << "latency mismatch at (" << a << ", " << b << ")";
      ASSERT_EQ(dense.hops(a, b), lazy.hops(a, b))
          << "hops mismatch at (" << a << ", " << b << ")";
    }
  }
}

TEST(PathModel, OnDemandMatchesDensePointwise) {
  const Topology topo = generate_topology(small_params(), 2007);
  const ClientMetrics dense = compute_client_metrics(topo);
  const OnDemandPathModel lazy(topo);
  expect_models_agree(dense, lazy);
  EXPECT_EQ(lazy.row_evictions(), 0u);
  EXPECT_LE(lazy.rows_computed(), lazy.num_attach_vertices());
}

TEST(PathModel, OnDemandMatchesDenseAggregates) {
  const Topology topo = generate_topology(small_params(), 4242);
  const ClientMetrics dense = compute_client_metrics(topo);
  const OnDemandPathModel lazy(topo);
  // The defaults accumulate in the same order over the same values, so
  // the doubles are bit-identical, not merely close.
  EXPECT_EQ(dense.mean_latency_us(), lazy.mean_latency_us());
  EXPECT_EQ(dense.mean_hops(), lazy.mean_hops());
  EXPECT_EQ(dense.hop_fraction(5, 6), lazy.hop_fraction(5, 6));
  EXPECT_EQ(dense.latency_fraction(39 * kMillisecond, 60 * kMillisecond),
            lazy.latency_fraction(39 * kMillisecond, 60 * kMillisecond));
  EXPECT_EQ(dense.latency_quantile(0.5), lazy.latency_quantile(0.5));
  EXPECT_EQ(dense.closeness_sums(), lazy.closeness_sums());
}

TEST(PathModel, ClosedFormMeanMatchesDenseProbe) {
  const Topology topo = generate_topology(small_params(), 99);
  const ClientMetrics dense = compute_client_metrics(topo);
  EXPECT_DOUBLE_EQ(dense.mean_latency_us(),
                   mean_client_latency_us(topo, topo.latency_scale));
}

TEST(PathModel, AgreesWhenClientsShareStubs) {
  // More clients than stub routers: attachment round-robins, so many
  // clients share an attach router (and the decomposition must still
  // distinguish their distinct access-edge weights).
  TopologyParams p = small_params();
  p.num_clients = 450;  // a 400-vertex underlay has < 400 stubs
  const Topology topo = generate_topology(p, 7);
  const ClientMetrics dense = compute_client_metrics(topo);
  const OnDemandPathModel lazy(topo);
  ASSERT_LT(lazy.num_attach_vertices(), p.num_clients);
  expect_models_agree(dense, lazy);
}

TEST(PathModel, TinyCacheEvictsButStaysExact) {
  const Topology topo = generate_topology(small_params(), 31337);
  const ClientMetrics dense = compute_client_metrics(topo);
  // A 1-byte budget degrades to a single retained row; answers must be
  // unchanged while the cache thrashes.
  const OnDemandPathModel lazy(topo, topo.latency_scale, 1);
  expect_models_agree(dense, lazy);
  EXPECT_GT(lazy.row_evictions(), 0u);
  // A second sweep in reverse source order recomputes evicted rows; the
  // recomputed answers must match the dense matrix just like the first
  // (cold) pass did.
  const std::uint32_t n = dense.num_clients();
  for (NodeId a = n; a-- > 0;) {
    for (NodeId b = 0; b < n; ++b) {
      ASSERT_EQ(dense.latency(a, b), lazy.latency(a, b));
      ASSERT_EQ(dense.hops(a, b), lazy.hops(a, b));
    }
  }
  EXPECT_GT(lazy.rows_computed(), lazy.num_attach_vertices());
  // Only one row is ever resident under a 1-byte budget.
  EXPECT_LT(lazy.memory_bytes(), dense.memory_bytes());
}

TEST(PathModel, ResolveAutomaticSwitchesAtThreshold) {
  EXPECT_EQ(resolve_path_model(PathModelKind::automatic, 1),
            PathModelKind::dense);
  EXPECT_EQ(resolve_path_model(PathModelKind::automatic, kDensePathMaxClients),
            PathModelKind::dense);
  EXPECT_EQ(
      resolve_path_model(PathModelKind::automatic, kDensePathMaxClients + 1),
      PathModelKind::ondemand);
  // Explicit requests pass through regardless of N.
  EXPECT_EQ(resolve_path_model(PathModelKind::dense, 1u << 20),
            PathModelKind::dense);
  EXPECT_EQ(resolve_path_model(PathModelKind::ondemand, 2),
            PathModelKind::ondemand);
}

TEST(PathModel, FactoryHonorsResolvedKind) {
  const Topology topo = generate_topology(small_params(), 5);
  const auto dense = make_path_model(topo, PathModelKind::automatic);
  EXPECT_NE(dynamic_cast<const ClientMetrics*>(dense.get()), nullptr);
  const auto lazy = make_path_model(topo, PathModelKind::ondemand);
  EXPECT_NE(dynamic_cast<const OnDemandPathModel*>(lazy.get()), nullptr);
}

harness::ExperimentConfig experiment_config(std::uint64_t seed) {
  harness::ExperimentConfig c;
  c.seed = seed;
  c.num_nodes = 40;
  c.num_messages = 30;
  c.warmup = 10 * kSecond;
  c.topology.num_underlay_vertices = 400;
  c.topology.num_transit_domains = 3;
  c.topology.transit_per_domain = 6;
  return c;
}

void expect_identical_results(const harness::ExperimentResult& a,
                              const harness::ExperimentResult& b) {
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.p50_latency_ms, b.p50_latency_ms);
  EXPECT_EQ(a.p95_latency_ms, b.p95_latency_ms);
  EXPECT_EQ(a.mean_delivery_fraction, b.mean_delivery_fraction);
  EXPECT_EQ(a.atomic_delivery_fraction, b.atomic_delivery_fraction);
  EXPECT_EQ(a.payload_packets, b.payload_packets);
  EXPECT_EQ(a.control_packets, b.control_packets);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.top5_connection_share, b.top5_connection_share);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(PathModel, ExperimentOutputIdenticalDenseVsOnDemand) {
  // The ranked strategy consumes closeness scores, the monitor consumes
  // pairwise latencies — both must see identical values from either model.
  for (const harness::StrategySpec& strategy :
       {harness::StrategySpec::make_flat(0.5),
        harness::StrategySpec::make_ranked(0.2)}) {
    harness::ExperimentConfig dense = experiment_config(77);
    dense.strategy = strategy;
    dense.path_model = PathModelKind::dense;
    harness::ExperimentConfig lazy = dense;
    lazy.path_model = PathModelKind::ondemand;
    const harness::ExperimentResult rd = harness::run_experiment(dense);
    const harness::ExperimentResult rl = harness::run_experiment(lazy);
    expect_identical_results(rd, rl);
    // At toy N the dense matrix is smaller than the on-demand model's
    // fixed per-vertex tables — the crossover is what kDensePathMaxClients
    // encodes — so only sanity-check the gauges here.
    EXPECT_GT(rl.path_rows_computed, 0u);
    EXPECT_GT(rl.path_model_bytes, 0u);
    EXPECT_EQ(rd.path_row_evictions, 0u);
  }
}

TEST(PathModel, OnDemandRunsAreJobCountInvariant) {
  // The large-N determinism contract, scaled down for CI: on-demand runs
  // fanned over a worker pool must be bit-identical to the serial loop.
  std::vector<harness::ExperimentConfig> configs;
  for (std::uint64_t seed : {21, 22, 23, 24}) {
    harness::ExperimentConfig c = experiment_config(seed);
    c.strategy = harness::StrategySpec::make_flat(0.5);
    c.path_model = PathModelKind::ondemand;
    configs.push_back(c);
  }
  const auto serial = harness::run_experiments(configs, 1);
  const auto parallel = harness::run_experiments(configs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical_results(serial[i], parallel[i]);
    EXPECT_EQ(serial[i].path_model_bytes, parallel[i].path_model_bytes);
    EXPECT_EQ(serial[i].path_rows_computed, parallel[i].path_rows_computed);
  }
}

}  // namespace
}  // namespace esm::net
