#include "overlay/neem.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "harness/experiment.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace esm::overlay {
namespace {

struct Swarm {
  sim::Simulator sim;
  net::ConstantLatencyModel latency{10 * kMillisecond};
  net::Transport transport;
  std::vector<std::unique_ptr<NeemNode>> nodes;

  explicit Swarm(std::uint32_t n, NeemParams params = {})
      : transport(sim, latency, n, {}, Rng(61)) {
    for (NodeId id = 0; id < n; ++id) {
      nodes.push_back(
          std::make_unique<NeemNode>(sim, transport, id, params, Rng(800 + id)));
      transport.register_handler(id, [this, id](NodeId src,
                                                const net::PacketPtr& p) {
        nodes[id]->handle_packet(src, p);
      });
    }
  }

  void bootstrap_and_settle(SimTime settle = 30 * kSecond) {
    Rng boot(7);
    for (NodeId id = 0; id < nodes.size(); ++id) {
      std::vector<NodeId> contacts;
      while (contacts.size() < 5 && contacts.size() + 1 < nodes.size()) {
        const NodeId c = static_cast<NodeId>(boot.below(nodes.size()));
        if (c != id &&
            std::find(contacts.begin(), contacts.end(), c) == contacts.end()) {
          contacts.push_back(c);
        }
      }
      nodes[id]->bootstrap(contacts);
      nodes[id]->start();
    }
    sim.run_until(settle);
  }

  bool connections_symmetric() const {
    for (NodeId a = 0; a < nodes.size(); ++a) {
      if (transport.is_silenced(a)) continue;
      for (const NodeId b : nodes[a]->connections()) {
        if (transport.is_silenced(b)) continue;
        if (!nodes[b]->connected_to(a)) return false;
      }
    }
    return true;
  }
};

TEST(Neem, HandshakeEstablishesSymmetricConnections) {
  Swarm swarm(30);
  swarm.bootstrap_and_settle(5 * kSecond);
  // The overlay mixes continuously, so an instantaneous check can catch
  // half-completed handshakes: quiesce first.
  for (auto& node : swarm.nodes) node->stop();
  swarm.sim.run_until(swarm.sim.now() + 2 * kSecond);
  for (const auto& node : swarm.nodes) {
    EXPECT_GE(node->connections().size(), 3u);
    std::set<NodeId> seen;
    for (const NodeId peer : node->connections()) {
      EXPECT_TRUE(seen.insert(peer).second);  // no duplicate connections
    }
  }
  EXPECT_TRUE(swarm.connections_symmetric());
}

TEST(Neem, ShufflesGrowDegreeTowardTarget) {
  NeemParams params;
  params.target_degree = 12;
  Swarm swarm(40, params);
  swarm.bootstrap_and_settle(60 * kSecond);
  double mean_degree = 0.0;
  for (const auto& node : swarm.nodes) {
    mean_degree += static_cast<double>(node->connections().size());
    EXPECT_LE(node->connections().size(), params.max_degree);
  }
  mean_degree /= static_cast<double>(swarm.nodes.size());
  EXPECT_GT(mean_degree, 8.0);  // bootstrapped with only 5 contacts
}

TEST(Neem, OverlayKeepsMixing) {
  // The paper notes connections are periodically shuffled: over a long run
  // many more connections are opened than exist at any instant.
  Swarm swarm(30);
  swarm.bootstrap_and_settle(120 * kSecond);
  std::uint64_t opened = 0;
  std::size_t current = 0;
  for (const auto& node : swarm.nodes) {
    opened += node->connections_opened();
    current += node->connections().size();
  }
  EXPECT_GT(opened, current);  // churned connections
}

TEST(Neem, BrokenConnectionsAreDetectedAndDropped) {
  Swarm swarm(20);
  swarm.bootstrap_and_settle(10 * kSecond);
  const NodeId dead = 4;
  swarm.transport.silence(dead);
  swarm.sim.run_until(swarm.sim.now() + 10 * kSecond);
  for (NodeId id = 0; id < 20; ++id) {
    if (id == dead) continue;
    EXPECT_FALSE(swarm.nodes[id]->connected_to(dead))
        << "node " << id << " still holds a connection to the dead node";
  }
}

TEST(Neem, SampleDrawsFromConnections) {
  Swarm swarm(20);
  swarm.bootstrap_and_settle(10 * kSecond);
  auto& node = *swarm.nodes[3];
  for (int i = 0; i < 20; ++i) {
    for (const NodeId peer : node.sample(4)) {
      EXPECT_TRUE(node.connected_to(peer));
    }
  }
}

TEST(Neem, RejectsBadParams) {
  sim::Simulator sim;
  net::ConstantLatencyModel latency(1);
  net::Transport transport(sim, latency, 2, {}, Rng(1));
  NeemParams bad;
  bad.target_degree = 0;
  EXPECT_THROW(NeemNode(sim, transport, 0, bad, Rng(1)), CheckFailure);
  NeemParams bad2;
  bad2.target_degree = 10;
  bad2.max_degree = 5;
  EXPECT_THROW(NeemNode(sim, transport, 0, bad2, Rng(1)), CheckFailure);
}

TEST(Neem, GossipOverNeemDeliversAtomically) {
  harness::ExperimentConfig c;
  c.seed = 41;
  c.num_nodes = 40;
  c.num_messages = 60;
  c.warmup = 15 * kSecond;
  c.topology.num_underlay_vertices = 600;
  c.topology.num_transit_domains = 3;
  c.topology.transit_per_domain = 6;
  c.overlay_kind = harness::OverlayKind::neem;
  c.strategy = harness::StrategySpec::make_ttl(2);
  const auto r = harness::run_experiment(c);
  EXPECT_DOUBLE_EQ(r.mean_delivery_fraction, 1.0);
}

}  // namespace
}  // namespace esm::overlay
