#include "core/gossip.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/strategies.hpp"
#include "net/transport.hpp"
#include "overlay/cyclon.hpp"
#include "wire/codec.hpp"
#include "sim/simulator.hpp"

namespace esm::core {
namespace {

/// Gossip swarm over the oracle sampler (isolates gossip from membership).
struct Swarm {
  sim::Simulator sim;
  net::ConstantLatencyModel latency{10 * kMillisecond};
  net::Transport transport;
  std::vector<std::unique_ptr<overlay::FullMembershipSampler>> samplers;
  std::vector<std::unique_ptr<FlatStrategy>> strategies;
  std::vector<std::unique_ptr<PayloadScheduler>> schedulers;
  std::vector<std::unique_ptr<GossipNode>> gossips;
  std::vector<std::vector<AppMessage>> delivered;

  Swarm(std::uint32_t n, GossipParams params, double pi)
      : transport(sim, latency, n, {}, Rng(17)), delivered(n) {
    RequestPolicy policy;
    policy.retransmission_period = 400 * kMillisecond;
    for (NodeId id = 0; id < n; ++id) {
      samplers.push_back(std::make_unique<overlay::FullMembershipSampler>(
          transport, id, Rng(300 + id)));
      strategies.push_back(
          std::make_unique<FlatStrategy>(pi, policy, Rng(400 + id)));
      schedulers.push_back(std::make_unique<PayloadScheduler>(
          sim, transport, id, *strategies[id],
          [this, id](const AppMessage& msg, Round r, NodeId src) {
            gossips[id]->l_receive(msg, r, src);
          }));
    }
    for (NodeId id = 0; id < n; ++id) {
      gossips.push_back(std::make_unique<GossipNode>(
          id, params, *samplers[id], *schedulers[id],
          [this, id](const AppMessage& msg) { delivered[id].push_back(msg); },
          Rng(500 + id)));
      transport.register_handler(id, [this, id](NodeId src,
                                                const net::PacketPtr& p) {
        schedulers[id]->handle_packet(src, p);
      });
    }
  }
};

TEST(Gossip, EagerAtomicDelivery) {
  Swarm swarm(30, GossipParams{5, 6}, /*pi=*/1.0);
  swarm.gossips[0]->multicast(256, 0, 0);
  swarm.sim.run();
  for (NodeId id = 0; id < 30; ++id) {
    ASSERT_EQ(swarm.delivered[id].size(), 1u) << "node " << id;
  }
}

TEST(Gossip, LazyAtomicDelivery) {
  Swarm swarm(30, GossipParams{5, 6}, /*pi=*/0.0);
  swarm.gossips[0]->multicast(256, 0, 0);
  swarm.sim.run();
  for (NodeId id = 0; id < 30; ++id) {
    ASSERT_EQ(swarm.delivered[id].size(), 1u) << "node " << id;
  }
}

TEST(Gossip, NeverDeliversTwice) {
  Swarm swarm(20, GossipParams{8, 8}, 1.0);
  for (int i = 0; i < 10; ++i) {
    swarm.gossips[static_cast<NodeId>(i % 20)]->multicast(
        100, static_cast<std::uint32_t>(i), swarm.sim.now());
    swarm.sim.run();
  }
  for (NodeId id = 0; id < 20; ++id) {
    std::set<std::uint32_t> seqs;
    for (const AppMessage& m : swarm.delivered[id]) {
      EXPECT_TRUE(seqs.insert(m.seq).second)
          << "node " << id << " delivered seq " << m.seq << " twice";
    }
  }
}

TEST(Gossip, OriginDeliversImmediately) {
  Swarm swarm(10, GossipParams{3, 4}, 1.0);
  const AppMessage m = swarm.gossips[4]->multicast(64, 9, 1234);
  EXPECT_EQ(m.origin, 4u);
  EXPECT_EQ(m.seq, 9u);
  EXPECT_EQ(m.multicast_time, 1234);
  ASSERT_EQ(swarm.delivered[4].size(), 1u);
  EXPECT_EQ(swarm.delivered[4][0].id, m.id);
}

TEST(Gossip, MaxRoundsBoundsSpread) {
  // t = 1: only the origin relays; exactly fanout nodes (plus the origin)
  // can deliver.
  Swarm swarm(40, GossipParams{/*fanout=*/4, /*max_rounds=*/1}, 1.0);
  swarm.gossips[0]->multicast(64, 0, 0);
  swarm.sim.run();
  std::size_t total = 0;
  for (const auto& d : swarm.delivered) total += d.size();
  EXPECT_EQ(total, 5u);  // origin + 4 relay targets
}

TEST(Gossip, FanoutControlsSendCount) {
  Swarm swarm(40, GossipParams{/*fanout=*/7, /*max_rounds=*/1}, 1.0);
  swarm.gossips[0]->multicast(64, 0, 0);
  swarm.sim.run();
  EXPECT_EQ(swarm.transport.stats().total_payload_packets(), 7u);
}

TEST(Gossip, KnownSetGrowsAndGarbageCollects) {
  Swarm swarm(10, GossipParams{3, 3}, 1.0);
  const AppMessage a = swarm.gossips[0]->multicast(10, 0, 0);
  swarm.sim.run();
  const AppMessage b = swarm.gossips[0]->multicast(10, 1, swarm.sim.now());
  swarm.sim.run();
  EXPECT_EQ(swarm.gossips[0]->known_count(), 2u);
  EXPECT_TRUE(swarm.gossips[0]->knows(a.id));
  swarm.gossips[0]->garbage_collect({a.id});
  EXPECT_EQ(swarm.gossips[0]->known_count(), 1u);
  EXPECT_FALSE(swarm.gossips[0]->knows(a.id));
  EXPECT_TRUE(swarm.gossips[0]->knows(b.id));
}

TEST(Gossip, DistinctMessageIds) {
  Swarm swarm(5, GossipParams{2, 2}, 1.0);
  std::set<std::string> ids;
  for (int i = 0; i < 100; ++i) {
    const AppMessage m = swarm.gossips[0]->multicast(
        8, static_cast<std::uint32_t>(i), swarm.sim.now());
    EXPECT_TRUE(ids.insert(to_string(m.id)).second);
    swarm.sim.run();
  }
}

TEST(Gossip, RejectsDegenerateParams) {
  Swarm swarm(5, GossipParams{2, 2}, 1.0);
  EXPECT_THROW(GossipNode(0, GossipParams{0, 2}, *swarm.samplers[0],
                          *swarm.schedulers[0], [](const AppMessage&) {},
                          Rng(1)),
               CheckFailure);
  EXPECT_THROW(GossipNode(0, GossipParams{2, 0}, *swarm.samplers[0],
                          *swarm.schedulers[0], [](const AppMessage&) {},
                          Rng(1)),
               CheckFailure);
}

TEST(Gossip, MixedEagerLazyStillAtomic) {
  Swarm swarm(30, GossipParams{7, 7}, /*pi=*/0.5);
  for (int i = 0; i < 5; ++i) {
    swarm.gossips[static_cast<NodeId>(i)]->multicast(
        128, static_cast<std::uint32_t>(i), swarm.sim.now());
    swarm.sim.run();
  }
  for (NodeId id = 0; id < 30; ++id) {
    EXPECT_EQ(swarm.delivered[id].size(), 5u) << "node " << id;
  }
}

TEST(Gossip, RealPayloadContentTravelsEndToEnd) {
  // Attach actual bytes and route every packet through the wire codec:
  // each delivery must carry an identical copy of the content.
  sim::Simulator sim;
  net::ConstantLatencyModel latency(10 * kMillisecond);
  const wire::WireCodec codec;
  net::TransportOptions opts;
  opts.codec = &codec;
  net::Transport transport(sim, latency, 12, opts, Rng(9));

  RequestPolicy policy;
  std::vector<std::unique_ptr<overlay::FullMembershipSampler>> samplers;
  std::vector<std::unique_ptr<FlatStrategy>> strategies;
  std::vector<std::unique_ptr<PayloadScheduler>> schedulers;
  std::vector<std::unique_ptr<GossipNode>> gossips;
  std::vector<std::vector<AppMessage>> delivered(12);
  for (NodeId id = 0; id < 12; ++id) {
    samplers.push_back(std::make_unique<overlay::FullMembershipSampler>(
        transport, id, Rng(40 + id)));
    // Mix of eager and lazy so both MSG paths carry content.
    strategies.push_back(
        std::make_unique<FlatStrategy>(0.5, policy, Rng(50 + id)));
    schedulers.push_back(std::make_unique<PayloadScheduler>(
        sim, transport, id, *strategies[id],
        [&gossips, id](const AppMessage& m, Round r, NodeId src) {
          gossips[id]->l_receive(m, r, src);
        }));
  }
  for (NodeId id = 0; id < 12; ++id) {
    gossips.push_back(std::make_unique<GossipNode>(
        id, GossipParams{4, 5}, *samplers[id], *schedulers[id],
        [&delivered, id](const AppMessage& m) { delivered[id].push_back(m); },
        Rng(60 + id)));
    transport.register_handler(id, [&schedulers, id](NodeId src,
                                                     const net::PacketPtr& p) {
      schedulers[id]->handle_packet(src, p);
    });
  }

  const std::vector<std::uint8_t> content{'h', 'e', 'l', 'l', 'o', 0x01,
                                          0xFF, 0x80, 0x00, 0x42};
  // Note the embedded 0x00: content survives even with zero bytes inside.
  gossips[0]->multicast(content, 0, 0);
  sim.run();
  for (NodeId id = 0; id < 12; ++id) {
    ASSERT_EQ(delivered[id].size(), 1u) << "node " << id;
    const AppMessage& m = delivered[id][0];
    EXPECT_EQ(m.payload_bytes, content.size());
    ASSERT_NE(m.data, nullptr) << "node " << id;
    EXPECT_EQ(*m.data, content) << "node " << id;
  }
}

TEST(Gossip, LazyUsesOnePayloadPerDelivery) {
  Swarm swarm(25, GossipParams{5, 6}, /*pi=*/0.0);
  swarm.gossips[0]->multicast(256, 0, 0);
  swarm.sim.run();
  // 24 receivers, each pulls the payload exactly once; no duplicates.
  EXPECT_EQ(swarm.transport.stats().total_payload_packets(), 24u);
  std::uint64_t dups = 0;
  for (const auto& s : swarm.schedulers) dups += s->stats().duplicate_payloads;
  EXPECT_EQ(dups, 0u);
}

}  // namespace
}  // namespace esm::core
