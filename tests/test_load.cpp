#include "load/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "load/workload_text.hpp"

namespace esm::load {
namespace {

WorkloadSpec one_publisher(ArrivalKind kind, double rate,
                           SimTime duration = 10 * kSecond) {
  WorkloadSpec spec;
  spec.duration = duration;
  PublisherSpec pub;
  pub.arrival = kind;
  pub.rate = rate;
  spec.publishers.push_back(pub);
  return spec;
}

TEST(Workload, FixedRateEmitsExactSpacing) {
  const auto spec = one_publisher(ArrivalKind::fixed_rate, 10.0);
  const WorkloadPlan plan = build_plan(spec, 8, Rng(1));
  // 10 msg/s over 10 s at 100 ms spacing: arrivals at 100ms, 200ms, ...,
  // strictly before duration.
  ASSERT_EQ(plan.size(), 99u);
  for (std::size_t i = 0; i < plan.arrivals.size(); ++i) {
    EXPECT_EQ(plan.arrivals[i].at,
              static_cast<SimTime>(i + 1) * 100 * kMillisecond);
  }
}

TEST(Workload, FixedRateUsesNoRandomness) {
  const auto spec = one_publisher(ArrivalKind::fixed_rate, 25.0);
  const WorkloadPlan a = build_plan(spec, 8, Rng(1));
  const WorkloadPlan b = build_plan(spec, 8, Rng(999));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.arrivals[i].at, b.arrivals[i].at);
  }
}

TEST(Workload, PoissonIsDeterministicAndRoughlyCalibrated) {
  const auto spec = one_publisher(ArrivalKind::poisson, 50.0, 20 * kSecond);
  const WorkloadPlan a = build_plan(spec, 8, Rng(7));
  const WorkloadPlan b = build_plan(spec, 8, Rng(7));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.arrivals[i].at, b.arrivals[i].at);
    EXPECT_EQ(a.arrivals[i].origin, b.arrivals[i].origin);
  }
  // Mean 1000 arrivals; a 25% band is ~8 sigma.
  EXPECT_GT(a.size(), 750u);
  EXPECT_LT(a.size(), 1250u);
  // Strictly increasing per publisher (single publisher here).
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a.arrivals[i].at, a.arrivals[i - 1].at);
  }
}

TEST(Workload, BurstConfinesArrivalsToOnWindows) {
  WorkloadSpec spec = one_publisher(ArrivalKind::burst, 200.0, 10 * kSecond);
  spec.publishers[0].burst_on = 500 * kMillisecond;
  spec.publishers[0].burst_off = 1500 * kMillisecond;
  const WorkloadPlan plan = build_plan(spec, 8, Rng(3));
  ASSERT_GT(plan.size(), 0u);
  const SimTime cycle = 2 * kSecond;
  for (const Arrival& a : plan.arrivals) {
    const SimTime in_cycle = a.at % cycle;
    EXPECT_LE(in_cycle, 500 * kMillisecond) << "arrival in OFF gap at "
                                            << a.at;
  }
}

TEST(Workload, AddingPublisherDoesNotShiftOthersArrivals) {
  // Publisher streams are independent splits: adding publisher 1 must not
  // change publisher 0's arrival times or origins.
  WorkloadSpec small = one_publisher(ArrivalKind::poisson, 20.0);
  WorkloadSpec big = small;
  PublisherSpec second;
  second.arrival = ArrivalKind::poisson;
  second.rate = 80.0;
  big.publishers.push_back(second);

  const WorkloadPlan a = build_plan(small, 16, Rng(11));
  const WorkloadPlan b = build_plan(big, 16, Rng(11));
  std::vector<Arrival> b0;
  for (const Arrival& arr : b.arrivals) {
    if (arr.publisher == 0) b0.push_back(arr);
  }
  ASSERT_EQ(a.size(), b0.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.arrivals[i].at, b0[i].at);
    EXPECT_EQ(a.arrivals[i].origin, b0[i].origin);
  }
}

TEST(Workload, RoundRobinOriginsCoverThePool) {
  const auto spec = one_publisher(ArrivalKind::fixed_rate, 10.0);
  const WorkloadPlan plan = build_plan(spec, 5, Rng(1));
  ASSERT_GE(plan.size(), 10u);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_EQ(plan.arrivals[i].origin,
              (plan.arrivals[i - 1].origin + 1) % 5);
  }
}

TEST(Workload, FixedNodePinsOrigin) {
  WorkloadSpec spec = one_publisher(ArrivalKind::fixed_rate, 10.0);
  spec.publishers[0].node = 3;
  const WorkloadPlan plan = build_plan(spec, 8, Rng(1));
  for (const Arrival& a : plan.arrivals) EXPECT_EQ(a.origin, 3u);
}

TEST(Workload, FractionTopicResolvesDeterministicSortedMembers) {
  WorkloadSpec spec = one_publisher(ArrivalKind::fixed_rate, 10.0);
  TopicSpec topic;
  topic.name = "feeds";
  topic.fraction = 0.25;
  spec.topics.push_back(topic);
  spec.publishers[0].topic = 0;
  const WorkloadPlan a = build_plan(spec, 100, Rng(5));
  const WorkloadPlan b = build_plan(spec, 100, Rng(5));
  ASSERT_EQ(a.topic_members.size(), 1u);
  EXPECT_EQ(a.topic_members[0], b.topic_members[0]);
  EXPECT_EQ(a.topic_members[0].size(), 25u);
  EXPECT_TRUE(std::is_sorted(a.topic_members[0].begin(),
                             a.topic_members[0].end()));
  // Every arrival originates inside the topic.
  for (const Arrival& arr : a.arrivals) {
    EXPECT_TRUE(std::binary_search(a.topic_members[0].begin(),
                                   a.topic_members[0].end(), arr.origin));
    EXPECT_EQ(a.topic_members[0][arr.origin_index], arr.origin);
  }
}

TEST(Workload, PinnedPublisherIsForcedIntoItsTopic) {
  WorkloadSpec spec = one_publisher(ArrivalKind::fixed_rate, 10.0);
  TopicSpec topic;
  topic.name = "ops";
  topic.members = {1, 2};
  spec.topics.push_back(topic);
  spec.publishers[0].topic = 0;
  spec.publishers[0].node = 7;
  const WorkloadPlan plan = build_plan(spec, 8, Rng(1));
  EXPECT_EQ(plan.topic_members[0], (std::vector<NodeId>{1, 2, 7}));
}

TEST(Workload, MaxMessagesTruncatesAfterGlobalSort) {
  WorkloadSpec spec = one_publisher(ArrivalKind::fixed_rate, 100.0);
  spec.max_messages = 10;
  const WorkloadPlan plan = build_plan(spec, 8, Rng(1));
  ASSERT_EQ(plan.size(), 10u);
  EXPECT_TRUE(std::is_sorted(plan.arrivals.begin(), plan.arrivals.end(),
                             [](const Arrival& a, const Arrival& b) {
                               return a.at < b.at;
                             }));
}

TEST(Workload, ValidateRejectsBadSpecs) {
  auto expect_invalid = [](WorkloadSpec spec, const char* needle) {
    try {
      spec.validate(8);
      FAIL() << "expected rejection containing: " << needle;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  {
    auto spec = one_publisher(ArrivalKind::poisson, 0.0);
    expect_invalid(spec, "rate");
  }
  {
    auto spec = one_publisher(ArrivalKind::poisson, -3.0);
    expect_invalid(spec, "rate");
  }
  {
    auto spec = one_publisher(ArrivalKind::poisson, 10.0);
    spec.duration = 0;
    expect_invalid(spec, "duration");
  }
  {
    auto spec = one_publisher(ArrivalKind::burst, 10.0);
    spec.publishers[0].burst_on = 0;
    expect_invalid(spec, "on-window");
  }
  {
    auto spec = one_publisher(ArrivalKind::poisson, 10.0);
    spec.publishers[0].node = 8;  // >= num_nodes
    expect_invalid(spec, "node 8");
  }
  {
    auto spec = one_publisher(ArrivalKind::poisson, 10.0);
    spec.publishers[0].topic = 0;  // no topics declared
    expect_invalid(spec, "topic index");
  }
  {
    auto spec = one_publisher(ArrivalKind::poisson, 10.0);
    TopicSpec t;
    t.name = "empty";
    spec.topics.push_back(t);  // no members, no fraction
    expect_invalid(spec, "empty member set");
  }
  {
    auto spec = one_publisher(ArrivalKind::poisson, 10.0);
    TopicSpec t;
    t.name = "oob";
    t.members = {42};
    spec.topics.push_back(t);
    expect_invalid(spec, "member 42");
  }
  {
    auto spec = one_publisher(ArrivalKind::poisson, 10.0);
    spec.publishers[0].start = spec.duration;
    expect_invalid(spec, "start");
  }
  {
    auto spec = one_publisher(ArrivalKind::poisson, 10.0);
    spec.publishers[0].start = 2 * kSecond;
    spec.publishers[0].stop = 1 * kSecond;
    expect_invalid(spec, "stop");
  }
}

TEST(Workload, RunawayRateFailsFast) {
  auto spec = one_publisher(ArrivalKind::fixed_rate, 1e9, 100 * kSecond);
  EXPECT_THROW(build_plan(spec, 8, Rng(1)), std::runtime_error);
}

TEST(WorkloadText, ParsesFullGrammar) {
  const std::string text = R"(
# heavy mixed workload
duration 12s
limit 5000
topic feeds fraction=0.25
topic ops nodes=0..3,6
publisher poisson rate=40 topic=feeds
publisher fixed rate=10 node=3 payload=512
publisher burst rate=200 on=250ms off=750ms start=2s stop=10s topic=ops
)";
  const WorkloadSpec spec = parse_workload(text);
  EXPECT_EQ(spec.duration, 12 * kSecond);
  EXPECT_EQ(spec.max_messages, 5000u);
  ASSERT_EQ(spec.topics.size(), 2u);
  EXPECT_EQ(spec.topics[0].name, "feeds");
  EXPECT_DOUBLE_EQ(spec.topics[0].fraction, 0.25);
  EXPECT_EQ(spec.topics[1].members, (std::vector<NodeId>{0, 1, 2, 3, 6}));
  ASSERT_EQ(spec.publishers.size(), 3u);
  EXPECT_EQ(spec.publishers[0].arrival, ArrivalKind::poisson);
  EXPECT_DOUBLE_EQ(spec.publishers[0].rate, 40.0);
  EXPECT_EQ(spec.publishers[0].topic, 0u);
  EXPECT_EQ(spec.publishers[1].arrival, ArrivalKind::fixed_rate);
  EXPECT_EQ(spec.publishers[1].node, 3u);
  EXPECT_EQ(spec.publishers[1].payload_bytes, 512u);
  EXPECT_EQ(spec.publishers[2].arrival, ArrivalKind::burst);
  EXPECT_EQ(spec.publishers[2].burst_on, 250 * kMillisecond);
  EXPECT_EQ(spec.publishers[2].burst_off, 750 * kMillisecond);
  EXPECT_EQ(spec.publishers[2].start, 2 * kSecond);
  EXPECT_EQ(spec.publishers[2].stop, 10 * kSecond);
  EXPECT_EQ(spec.publishers[2].topic, 1u);
  spec.validate(16);  // sane against a small cluster
}

TEST(WorkloadText, RejectionsNameTheLine) {
  auto expect_reject = [](const std::string& text, const char* needle) {
    try {
      parse_workload(text);
      FAIL() << "expected rejection containing: " << needle;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("workload line"), std::string::npos) << what;
      EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
  };
  expect_reject("publisher warp rate=10\n", "warp");
  expect_reject("publisher poisson\n", "rate");
  expect_reject("duration 10\npublisher poisson rate=1\n", "unit");
  expect_reject("topic a\npublisher poisson rate=1\n", "nodes=");
  expect_reject("topic a fraction=0.5 nodes=1\npublisher poisson rate=1\n",
                "one of");
  expect_reject("topic a fraction=0.5\ntopic a fraction=0.5\n"
                "publisher poisson rate=1\n",
                "duplicate");
  expect_reject("publisher poisson rate=1 topic=ghost\n", "ghost");
  expect_reject("publisher poisson rate=1 on=10ms\n", "on=");
  // A script with no publishers is rejected at end of parse (no line).
  EXPECT_THROW(parse_workload(std::string("duration 5s\n")),
               std::runtime_error);
}

TEST(WorkloadText, DescribeSummarizes) {
  const WorkloadSpec spec = parse_workload(
      "duration 8s\ntopic t fraction=0.5\npublisher poisson rate=5 topic=t\n");
  const std::string text = spec.describe();
  EXPECT_NE(text.find("1 publisher"), std::string::npos);
  EXPECT_NE(text.find("1 topic"), std::string::npos);
  EXPECT_NE(text.find("8s"), std::string::npos);
}

}  // namespace
}  // namespace esm::load
