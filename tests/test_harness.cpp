#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/table.hpp"
#include "net/latency_model.hpp"

namespace esm::harness {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig c;
  c.seed = 3;
  c.num_nodes = 30;
  c.num_messages = 40;
  c.warmup = 10 * kSecond;
  c.topology.num_underlay_vertices = 400;
  c.topology.num_transit_domains = 3;
  c.topology.transit_per_domain = 6;
  return c;
}

TEST(RankByCloseness, OrdersByMeanLatency) {
  // 4 clients; node 1 is closest to everyone.
  net::ClientMetrics m(4);
  const SimTime base = 10 * kMillisecond;
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = 0; b < 4; ++b) {
      if (a == b) continue;
      SimTime lat = base * (a + b + 2);
      if (a == 1 || b == 1) lat = base;  // node 1 is central
      m.set(a, b, lat, 2);
    }
  }
  const auto order = rank_by_closeness(m);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order.size(), 4u);
}

TEST(RankByCloseness, DeterministicTieBreak) {
  net::ClientMetrics m(3);
  for (NodeId a = 0; a < 3; ++a) {
    for (NodeId b = 0; b < 3; ++b) {
      if (a != b) m.set(a, b, 5 * kMillisecond, 2);
    }
  }
  const auto order = rank_by_closeness(m);
  EXPECT_EQ(order, (std::vector<NodeId>{0, 1, 2}));
}

TEST(Harness, BoundedEgressBufferDropsUnderOverload) {
  ExperimentConfig c = tiny_config();
  c.strategy = StrategySpec::make_flat(1.0);
  c.payload_bytes = 4096;
  c.mean_interval = 50 * kMillisecond;  // sustained overload
  c.bandwidth_bps = 1'000'000;
  c.egress_buffer_bytes = 32 * 1024;
  const ExperimentResult r = run_experiment(c);
  EXPECT_GT(r.buffer_drops, 0u);
  // ~7x oversubscribed egress: deliveries suffer, but the epidemic keeps
  // reaching a majority of nodes (graceful, not cliff-edge, degradation).
  EXPECT_GT(r.mean_delivery_fraction, 0.50);
  EXPECT_LT(r.mean_delivery_fraction, 1.0);
}

TEST(Harness, UnboundedBufferNeverDrops) {
  ExperimentConfig c = tiny_config();
  c.strategy = StrategySpec::make_flat(1.0);
  c.bandwidth_bps = 1'000'000;
  c.egress_buffer_bytes = 0;
  const ExperimentResult r = run_experiment(c);
  EXPECT_EQ(r.buffer_drops, 0u);
}

TEST(Harness, SlowNodesGetSlowBandwidth) {
  ExperimentConfig c = tiny_config();
  c.strategy = StrategySpec::make_ttl(2);
  c.slow_fraction = 0.3;
  c.slow_bandwidth_bps = 500'000;
  c.payload_bytes = 2048;
  c.mean_interval = 100 * kMillisecond;
  c.egress_buffer_bytes = 32 * 1024;
  const ExperimentResult slow = run_experiment(c);
  c.slow_fraction = 0.0;
  const ExperimentResult fast = run_experiment(c);
  // Heterogeneous capacity hurts latency relative to the homogeneous run.
  EXPECT_GT(slow.mean_latency_ms, fast.mean_latency_ms);
}

TEST(Harness, AdaptiveFanoutPreservesDelivery) {
  ExperimentConfig c = tiny_config();
  c.strategy = StrategySpec::make_flat(1.0);
  c.slow_fraction = 0.3;
  c.slow_bandwidth_bps = 10'000'000;
  c.adaptive_fanout = true;
  const ExperimentResult r = run_experiment(c);
  EXPECT_GT(r.mean_delivery_fraction, 0.99);
  // Fanout redistribution: fast nodes relay more than fanout, slow less,
  // so the average payload contribution stays near the configured fanout.
  EXPECT_NEAR(r.load_all.payload_per_msg, 11.0, 2.0);
}

TEST(Harness, ReportBestFractionControlsClassSplit) {
  ExperimentConfig c = tiny_config();
  c.strategy = StrategySpec::make_ranked(0.1);
  c.report_best_fraction = 0.5;
  const ExperimentResult r = run_experiment(c);
  EXPECT_EQ(r.load_best.nodes, 15u);
  EXPECT_EQ(r.load_low.nodes, 15u);
  // Strategy still used its own 10% best set.
  EXPECT_EQ(r.best_nodes.size(), 3u);
}

TEST(Harness, ResultBookkeepingConsistency) {
  ExperimentConfig c = tiny_config();
  c.strategy = StrategySpec::make_ttl(2);
  const ExperimentResult r = run_experiment(c);
  EXPECT_EQ(r.node_payloads.size(), c.num_nodes);
  EXPECT_EQ(r.client_coords.size(), c.num_nodes);
  EXPECT_EQ(r.load_all.nodes, c.num_nodes);
  std::uint64_t node_total = 0;
  for (const auto p : r.node_payloads) node_total += p;
  EXPECT_EQ(node_total, r.payload_packets);
  // Connection payload counts sum to the same total.
  std::uint64_t link_total = 0;
  for (const auto& [link, count] : r.connection_payloads) link_total += count;
  EXPECT_EQ(link_total, r.payload_packets);
}

TEST(Harness, ChurnKeepsDeliveringWithEagerGossip) {
  ExperimentConfig c = tiny_config();
  c.strategy = StrategySpec::make_flat(1.0);
  c.num_messages = 60;
  c.churn_rate = 2.0;  // aggressive for a 30-node group
  const ExperimentResult r = run_experiment(c);
  EXPECT_GT(r.mean_delivery_fraction, 0.90);
  EXPECT_LE(r.mean_delivery_fraction, 1.0);
}

TEST(Harness, ChurnRevivalsRejoinHyParView) {
  ExperimentConfig c = tiny_config();
  c.strategy = StrategySpec::make_flat(1.0);
  c.overlay_kind = OverlayKind::hyparview;
  c.overlay.view_size = 6;
  c.gossip.fanout = 6;
  c.warmup = 20 * kSecond;
  c.num_messages = 60;
  c.mean_interval = 300 * kMillisecond;
  c.churn_rate = 1.0;
  const ExperimentResult r = run_experiment(c);
  // Revived nodes re-join and resume delivering: the run stays healthy.
  EXPECT_GT(r.mean_delivery_fraction, 0.85);
}

TEST(Harness, GarbageCollectionBoundsState) {
  ExperimentConfig c = tiny_config();
  c.strategy = StrategySpec::make_ttl(2);
  c.num_messages = 100;
  c.mean_interval = 200 * kMillisecond;
  c.message_lifetime = 4 * kSecond;
  const ExperimentResult gc = run_experiment(c);
  c.message_lifetime = 0;
  const ExperimentResult no_gc = run_experiment(c);

  // GC keeps the known-set far below the total message count; without it
  // every node remembers everything.
  EXPECT_GT(gc.messages_garbage_collected, 50u);
  EXPECT_LT(gc.max_known_messages, 60u);
  EXPECT_EQ(no_gc.messages_garbage_collected, 0u);
  EXPECT_EQ(no_gc.max_known_messages, 100u);
  // A lifetime of many seconds never collects an active message:
  // deliveries are unaffected.
  EXPECT_DOUBLE_EQ(gc.mean_delivery_fraction, 1.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace esm::harness
