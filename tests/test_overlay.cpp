#include "overlay/cyclon.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace esm::overlay {
namespace {

struct Swarm {
  sim::Simulator sim;
  net::ConstantLatencyModel latency{5 * kMillisecond};
  net::Transport transport;
  std::vector<std::unique_ptr<CyclonNode>> nodes;

  explicit Swarm(std::uint32_t n, OverlayParams params = {})
      : transport(sim, latency, n, {}, Rng(11)) {
    Rng boot(1234);
    for (NodeId id = 0; id < n; ++id) {
      nodes.push_back(std::make_unique<CyclonNode>(sim, transport, id, params,
                                                   Rng(1000 + id)));
    }
    for (NodeId id = 0; id < n; ++id) {
      std::vector<NodeId> contacts;
      while (contacts.size() < params.view_size && contacts.size() + 1 < n) {
        const NodeId c = static_cast<NodeId>(boot.below(n));
        if (c != id &&
            std::find(contacts.begin(), contacts.end(), c) == contacts.end()) {
          contacts.push_back(c);
        }
      }
      nodes[id]->bootstrap(contacts);
      transport.register_handler(id, [this, id](NodeId src,
                                                const net::PacketPtr& p) {
        nodes[id]->handle_packet(src, p);
      });
    }
  }

  void start_all() {
    for (auto& n : nodes) n->start();
  }
};

TEST(Cyclon, BootstrapFillsViewWithoutSelfOrDuplicates) {
  Swarm swarm(30);
  for (const auto& node : swarm.nodes) {
    std::set<NodeId> seen;
    for (const ViewEntry& e : node->view()) {
      EXPECT_NE(e.id, node->self());
      EXPECT_TRUE(seen.insert(e.id).second);
    }
    EXPECT_LE(node->view().size(), 15u);
    EXPECT_GE(node->view().size(), 1u);
  }
}

TEST(Cyclon, ViewsStayBoundedAndCleanAfterShuffling) {
  Swarm swarm(30);
  swarm.start_all();
  swarm.sim.run_until(30 * kSecond);
  for (const auto& node : swarm.nodes) {
    EXPECT_LE(node->view().size(), 15u);
    EXPECT_GE(node->view().size(), 10u);  // exchanges keep views full
    std::set<NodeId> seen;
    for (const ViewEntry& e : node->view()) {
      EXPECT_NE(e.id, node->self());
      EXPECT_TRUE(seen.insert(e.id).second);
      EXPECT_LT(e.id, 30u);
    }
  }
}

TEST(Cyclon, ShufflingMixesViews) {
  Swarm swarm(40);
  std::vector<std::set<NodeId>> before(swarm.nodes.size());
  for (std::size_t i = 0; i < swarm.nodes.size(); ++i) {
    for (const ViewEntry& e : swarm.nodes[i]->view()) before[i].insert(e.id);
  }
  swarm.start_all();
  swarm.sim.run_until(30 * kSecond);
  // After 30 shuffle rounds most views should have churned substantially.
  int changed = 0;
  for (std::size_t i = 0; i < swarm.nodes.size(); ++i) {
    std::set<NodeId> after;
    for (const ViewEntry& e : swarm.nodes[i]->view()) after.insert(e.id);
    std::vector<NodeId> kept;
    std::set_intersection(before[i].begin(), before[i].end(), after.begin(),
                          after.end(), std::back_inserter(kept));
    if (kept.size() < before[i].size()) ++changed;
  }
  EXPECT_GT(changed, static_cast<int>(swarm.nodes.size() * 3 / 4));
}

TEST(Cyclon, InDegreeStaysBalanced) {
  Swarm swarm(50);
  swarm.start_all();
  swarm.sim.run_until(60 * kSecond);
  std::vector<int> indegree(50, 0);
  for (const auto& node : swarm.nodes) {
    for (const ViewEntry& e : node->view()) ++indegree[e.id];
  }
  const double mean =
      std::accumulate(indegree.begin(), indegree.end(), 0.0) / 50.0;
  for (const int d : indegree) {
    // Uniformity: no node should be wildly over- or under-represented.
    EXPECT_GT(d, mean * 0.3);
    EXPECT_LT(d, mean * 2.5);
  }
}

TEST(Cyclon, UnionGraphStaysConnected) {
  Swarm swarm(40);
  swarm.start_all();
  swarm.sim.run_until(30 * kSecond);
  // BFS over the union of views (undirected).
  std::vector<std::set<NodeId>> adj(40);
  for (const auto& node : swarm.nodes) {
    for (const ViewEntry& e : node->view()) {
      adj[node->self()].insert(e.id);
      adj[e.id].insert(node->self());
    }
  }
  std::vector<bool> seen(40, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const NodeId v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        stack.push_back(v);
      }
    }
  }
  EXPECT_EQ(count, 40u);
}

TEST(Cyclon, SampleReturnsDistinctViewMembers) {
  Swarm swarm(30);
  swarm.start_all();
  swarm.sim.run_until(10 * kSecond);
  auto& node = *swarm.nodes[0];
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = node.sample(5);
    EXPECT_LE(s.size(), 5u);
    std::set<NodeId> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), s.size());
    for (const NodeId id : s) EXPECT_TRUE(node.knows(id));
  }
}

TEST(Cyclon, SampleLargerThanViewReturnsWholeView) {
  Swarm swarm(5);
  const auto s = swarm.nodes[0]->sample(100);
  EXPECT_EQ(s.size(), swarm.nodes[0]->view().size());
}

TEST(Cyclon, FailedNodeIsForgotten) {
  Swarm swarm(30);
  swarm.start_all();
  swarm.sim.run_until(10 * kSecond);
  const NodeId dead = 7;
  swarm.transport.silence(dead);
  auto count_references = [&] {
    int refs = 0;
    for (const auto& node : swarm.nodes) {
      if (node->self() != dead && node->knows(dead)) ++refs;
    }
    return refs;
  };
  const int before = count_references();
  swarm.sim.run_until(120 * kSecond);
  const int after = count_references();
  // Age-based eviction steadily purges the dead descriptor.
  EXPECT_LT(after, before / 2 + 1);
}

TEST(Cyclon, SurvivesMassFailure) {
  Swarm swarm(40);
  swarm.start_all();
  swarm.sim.run_until(10 * kSecond);
  for (NodeId id = 20; id < 40; ++id) swarm.transport.silence(id);
  swarm.sim.run_until(60 * kSecond);
  // Survivors keep non-empty views dominated by live peers.
  for (NodeId id = 0; id < 20; ++id) {
    const auto& view = swarm.nodes[id]->view();
    EXPECT_GE(view.size(), 3u);
    int live = 0;
    for (const ViewEntry& e : view) {
      if (e.id < 20) ++live;
    }
    EXPECT_GT(live, static_cast<int>(view.size()) / 2);
  }
}

TEST(Cyclon, ReseedForceInsertsContact) {
  Swarm swarm(30);
  auto& node = *swarm.nodes[0];
  // View is full after bootstrap; a normal bootstrap() call cannot add.
  const std::size_t before = node.view().size();
  node.reseed(29);
  EXPECT_TRUE(node.knows(29));
  EXPECT_EQ(node.view().size(), before);  // replaced, not grown
  node.reseed(29);                        // idempotent
  node.reseed(0);                         // self is ignored
  EXPECT_FALSE(node.knows(0));
}

TEST(Cyclon, ReseedRemergesPartitionedOverlay) {
  // Partition long enough for each side to forget the other, heal, then
  // reseed one bridge: shuffling must re-merge the membership.
  Swarm swarm(30);
  swarm.start_all();
  std::vector<int> group(30, 0);
  for (NodeId id = 15; id < 30; ++id) group[id] = 1;
  swarm.transport.set_partition(group);
  swarm.sim.run_until(120 * kSecond);
  auto cross_links = [&] {
    int cross = 0;
    for (const auto& node : swarm.nodes) {
      for (const ViewEntry& e : node->view()) {
        if ((node->self() < 15) != (e.id < 15)) ++cross;
      }
    }
    return cross;
  };
  EXPECT_EQ(cross_links(), 0);  // fully forgotten
  swarm.transport.heal_partition();
  swarm.sim.run_until(swarm.sim.now() + 30 * kSecond);
  EXPECT_EQ(cross_links(), 0);  // healing alone cannot re-merge
  swarm.nodes[0]->reseed(20);   // one bridge descriptor
  swarm.sim.run_until(swarm.sim.now() + 60 * kSecond);
  EXPECT_GT(cross_links(), 30);  // mixed back together
}

TEST(FullMembershipSampler, UniformOverLiveNodes) {
  sim::Simulator sim;
  net::ConstantLatencyModel latency(1);
  net::Transport transport(sim, latency, 10, {}, Rng(1));
  transport.silence(3);
  FullMembershipSampler sampler(transport, 0, Rng(2));
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = sampler.sample(4);
    EXPECT_EQ(s.size(), 4u);
    for (const NodeId id : s) {
      EXPECT_NE(id, 0u);   // not self
      EXPECT_NE(id, 3u);   // not silenced
      EXPECT_LT(id, 10u);
    }
  }
}

}  // namespace
}  // namespace esm::overlay
