// Unit tests for the compact containers (common/compact.hpp) and the
// message intern table (core/msg_arena.hpp): FlatMap probe/erase
// correctness against a reference map, bitset grow/count semantics, slab
// reuse discipline, and — the property the whole compact node core rests
// on — deterministic intern-key assignment in first-sight order.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/compact.hpp"
#include "common/rng.hpp"
#include "core/msg_arena.hpp"

namespace {

using esm::MsgId;
using esm::MsgKey;
using esm::compact::DynamicBitset;
using esm::compact::FlatMap;
using esm::compact::Slab;
using esm::core::MessageArena;

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint32_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7u), nullptr);

  auto [v, inserted] = map.try_emplace(7u);
  EXPECT_TRUE(inserted);
  *v = 42;
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.find(7u), nullptr);
  EXPECT_EQ(*map.find(7u), 42);

  auto [again, fresh] = map.try_emplace(7u);
  EXPECT_FALSE(fresh);
  EXPECT_EQ(*again, 42);
  EXPECT_EQ(map.size(), 1u);

  EXPECT_TRUE(map.erase(7u));
  EXPECT_FALSE(map.erase(7u));
  EXPECT_EQ(map.find(7u), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<std::uint64_t, std::uint32_t> map;
  EXPECT_EQ(map[5u], 0u);
  map[5u] = 9u;
  EXPECT_EQ(map[5u], 9u);
  EXPECT_EQ(map.size(), 1u);
}

// Heavy random insert/erase churn against std::map: probe chains must
// survive backward-shift deletion with no lost or phantom entries.
TEST(FlatMap, MatchesReferenceUnderChurn) {
  FlatMap<std::uint32_t, std::uint32_t> map;
  std::map<std::uint32_t, std::uint32_t> ref;
  esm::Rng rng(99);
  for (int iter = 0; iter < 20000; ++iter) {
    // Small key range forces collisions and long probe chains.
    const auto key = static_cast<std::uint32_t>(rng.below(512));
    if (rng.chance(0.4)) {
      EXPECT_EQ(map.erase(key), ref.erase(key) == 1u);
    } else {
      const auto val = static_cast<std::uint32_t>(rng.below(1u << 30));
      map[key] = val;
      ref[key] = val;
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  for (const auto& [k, v] : ref) {
    ASSERT_NE(map.find(k), nullptr) << "missing key " << k;
    EXPECT_EQ(*map.find(k), v);
  }
  std::size_t visited = 0;
  map.for_each([&](std::uint32_t k, std::uint32_t v) {
    ++visited;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(it->second, v);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatMap, ReservePreventsRehash) {
  FlatMap<std::uint32_t, std::uint32_t> map;
  map.reserve(1000);
  const std::size_t bytes = map.table_bytes();
  for (std::uint32_t i = 0; i < 1000; ++i) map[i] = i;
  EXPECT_EQ(map.table_bytes(), bytes) << "rehashed despite reserve";
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_NE(map.find(i), nullptr);
    EXPECT_EQ(*map.find(i), i);
  }
}

TEST(DynamicBitset, SetTestResetCount) {
  DynamicBitset bits;
  EXPECT_FALSE(bits.test(1000));  // beyond capacity reads false
  EXPECT_TRUE(bits.set(3));
  EXPECT_FALSE(bits.set(3));  // already set
  EXPECT_TRUE(bits.set(200));
  EXPECT_EQ(bits.count(), 2u);
  EXPECT_TRUE(bits.test(3));
  EXPECT_TRUE(bits.reset(3));
  EXPECT_FALSE(bits.reset(3));
  EXPECT_FALSE(bits.reset(9999));  // beyond capacity: no-op
  EXPECT_EQ(bits.count(), 1u);
}

TEST(DynamicBitset, ForEachSetAscending) {
  DynamicBitset bits;
  const std::vector<std::size_t> keys = {0, 63, 64, 100, 1023, 1024};
  for (auto k : keys) bits.set(k);
  std::vector<std::size_t> seen;
  bits.for_each_set([&](std::size_t k) { seen.push_back(k); });
  EXPECT_EQ(seen, keys);  // already sorted ascending
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(Slab, LifoReuseKeepsCapacity) {
  Slab<std::vector<int>> slab;
  const auto a = slab.alloc();
  slab[a].assign(100, 7);
  const std::size_t cap = slab[a].capacity();
  slab[a].clear();  // caller resets logical state...
  slab.free(a);     // ...free keeps the object's heap

  const auto b = slab.alloc();
  EXPECT_EQ(b, a) << "free list must be LIFO";
  EXPECT_TRUE(slab[b].empty());
  EXPECT_GE(slab[b].capacity(), cap) << "capacity lost across reuse";
  EXPECT_EQ(slab.slots(), 1u);

  const auto c = slab.alloc();
  EXPECT_NE(c, b);
  EXPECT_EQ(slab.slots(), 2u);
  slab.free(c);
  slab.free(b);
  EXPECT_EQ(slab.alloc(), b) << "LIFO: last freed is first reused";
  EXPECT_EQ(slab.alloc(), c);
}

TEST(MessageArena, InternIsIdempotentAndDense) {
  MessageArena arena;
  esm::Rng rng(7);
  std::vector<MsgId> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(rng.next_msg_id());

  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(arena.intern(ids[i]), static_cast<MsgKey>(i))
        << "keys must be assigned densely in first-sight order";
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(arena.intern(ids[i]), static_cast<MsgKey>(i));
    EXPECT_EQ(arena.find(ids[i]), static_cast<MsgKey>(i));
    EXPECT_EQ(arena.id(static_cast<MsgKey>(i)), ids[i]);
  }
  EXPECT_EQ(arena.size(), ids.size());
  EXPECT_EQ(arena.find(rng.next_msg_id()), esm::kInvalidMsgKey);
}

// The determinism invariant: two arenas fed the same id sequence assign
// identical keys — key assignment is a pure function of first-sight
// order, independent of table capacity history.
TEST(MessageArena, InternDeterministicAcrossInstances) {
  esm::Rng rng(2007);
  std::vector<MsgId> ids;
  for (int i = 0; i < 5000; ++i) ids.push_back(rng.next_msg_id());

  MessageArena cold;            // grows through every rehash
  MessageArena warm;            // pre-sized, never rehashes
  warm.reserve(ids.size());
  for (const MsgId& id : ids) {
    ASSERT_EQ(cold.intern(id), warm.intern(id));
  }
  // Interleaved re-interning must not mint new keys.
  for (std::size_t i = 0; i < ids.size(); i += 7) {
    ASSERT_EQ(cold.intern(ids[i]), warm.intern(ids[i]));
  }
  ASSERT_EQ(cold.size(), warm.size());
}

TEST(MessageArena, StoreKeepsCanonicalMessage) {
  MessageArena arena;
  esm::Rng rng(11);
  esm::core::AppMessage msg;
  msg.id = rng.next_msg_id();
  msg.origin = 4;
  msg.seq = 9;
  msg.payload_bytes = 1234;
  msg.multicast_time = 5 * esm::kSecond;

  const MsgKey key = arena.store(msg);
  EXPECT_TRUE(arena.has_message(key));
  EXPECT_EQ(arena.message(key).seq, 9u);
  EXPECT_EQ(arena.message(key).payload_bytes, 1234u);
  // Storing again is a no-op returning the same key.
  EXPECT_EQ(arena.store(msg), key);
  EXPECT_EQ(arena.size(), 1u);

  // Interned-but-never-stored ids have a key but no payload.
  const MsgKey bare = arena.intern(rng.next_msg_id());
  EXPECT_FALSE(arena.has_message(bare));
}

}  // namespace
