// Tests for the fault-injection subsystem: scenario model validation,
// the text parser, the injector mechanics, per-phase windowed metrics,
// and an end-to-end §6.3-style kill-and-recover experiment.
#include "fault/injector.hpp"
#include "fault/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/scenario_text.hpp"
#include "load/workload.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "stats/phase_windows.hpp"

namespace esm::fault {
namespace {

// ---------------------------------------------------------------------
// Scenario text parser

harness::ExperimentConfig small_config(std::uint64_t seed) {
  harness::ExperimentConfig c;
  c.seed = seed;
  c.num_nodes = 25;
  c.num_messages = 30;
  c.warmup = 10 * kSecond;
  c.topology.num_underlay_vertices = 400;
  c.topology.num_transit_domains = 3;
  c.topology.transit_per_domain = 6;
  return c;
}

TEST(ScenarioText, ParsesFullGrammar) {
  const ScenarioScript script = harness::parse_scenario(
      "# a comment line\n"
      "0s    phase baseline   # trailing comment\n"
      "\n"
      "60s   crash best 5\n"
      "500ms crash nodes 0..2,7\n"
      "70s   recover all\n"
      "80s   recover random 3\n"
      "30s   partition 0..9 | 10,11\n"
      "35s   heal\n"
      "40s   loss rate=0.2 for=5s\n"
      "41s   loss rate=0.3 link=1-2\n"
      "42s   latency factor=2.5 for=1500ms\n"
      "43s   churn rate=1.5 for=10s\n"
      "44s   noise to=0.4 over=2s\n");
  ASSERT_EQ(script.events.size(), 12u);
  // Sorted by time: the 500ms crash comes right after the 0s phase.
  EXPECT_EQ(script.events[0].kind, FaultKind::phase);
  EXPECT_EQ(script.events[0].label, "baseline");
  EXPECT_EQ(script.events[1].at, 500 * kMillisecond);
  EXPECT_EQ(script.events[1].kind, FaultKind::crash);
  EXPECT_EQ(script.events[1].selector, SelectorKind::ids);
  EXPECT_EQ(script.events[1].ids, (std::vector<NodeId>{0, 1, 2, 7}));

  const FaultEvent& part = script.events[2];
  EXPECT_EQ(part.kind, FaultKind::partition);
  ASSERT_EQ(part.groups.size(), 2u);
  EXPECT_EQ(part.groups[0].size(), 10u);
  EXPECT_EQ(part.groups[1], (std::vector<NodeId>{10, 11}));
  EXPECT_EQ(script.events[3].kind, FaultKind::heal);

  const FaultEvent& loss = script.events[4];
  EXPECT_EQ(loss.kind, FaultKind::loss_burst);
  EXPECT_DOUBLE_EQ(loss.value, 0.2);
  EXPECT_EQ(loss.duration, 5 * kSecond);
  EXPECT_EQ(loss.link_a, kInvalidNode);

  const FaultEvent& link_loss = script.events[5];
  EXPECT_EQ(link_loss.link_a, 1u);
  EXPECT_EQ(link_loss.link_b, 2u);
  EXPECT_EQ(link_loss.duration, 0);

  const FaultEvent& spike = script.events[6];
  EXPECT_EQ(spike.kind, FaultKind::latency_spike);
  EXPECT_DOUBLE_EQ(spike.value, 2.5);
  EXPECT_EQ(spike.duration, 1500 * kMillisecond);

  EXPECT_EQ(script.events[7].kind, FaultKind::churn);
  EXPECT_DOUBLE_EQ(script.events[7].value, 1.5);

  const FaultEvent& noise = script.events[8];
  EXPECT_EQ(noise.kind, FaultKind::noise_ramp);
  EXPECT_DOUBLE_EQ(noise.value, 0.4);
  EXPECT_EQ(noise.duration, 2 * kSecond);
  EXPECT_TRUE(script.has_noise_events());

  const FaultEvent& best = script.events[9];
  EXPECT_EQ(best.kind, FaultKind::crash);
  EXPECT_EQ(best.selector, SelectorKind::best);
  EXPECT_EQ(best.count, 5u);
  EXPECT_EQ(script.events[10].selector, SelectorKind::all_crashed);
  EXPECT_EQ(script.events[11].selector, SelectorKind::random);
}

TEST(ScenarioText, MultiWordPhaseLabel) {
  const ScenarioScript s = harness::parse_scenario("5s phase after the kill\n");
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].label, "after the kill");
  EXPECT_EQ(s.events[0].at, 5 * kSecond);
}

void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    harness::parse_scenario(text);
    FAIL() << "expected parse error for: " << text;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioText, ErrorsCarryLineNumbers) {
  expect_parse_error("0s phase a\n1s bogus-command x\n", "scenario line 2");
  expect_parse_error("10 phase late\n", "needs a unit");
  expect_parse_error("1s crash\n", "crash needs a selector");
  expect_parse_error("1s crash everything 5\n", "unknown selector");
  expect_parse_error("1s crash best\n", "needs a count");
  expect_parse_error("1s crash best 0\n", "count must be > 0");
  expect_parse_error("1s crash nodes 5..2\n", "backwards range");
  expect_parse_error("1s phase\n", "phase needs a label");
  // Comma labels would land in a trace CSV field and fail to re-parse far
  // from the cause; rejected at scenario-parse time instead.
  expect_parse_error("1s phase warm,up\n", "must not contain commas");
  expect_parse_error("1s loss for=5s\n", "loss needs rate=");
  expect_parse_error("1s loss rate=abc\n", "bad number");
  expect_parse_error("1s latency rate=2\n", "latency needs factor=");
  expect_parse_error("1s loss rate=0.1 link=5\n", "link=A-B");
  expect_parse_error("1s partition\n", "at least one group");
  expect_parse_error("1s heal now\n", "heal takes no arguments");
  expect_parse_error("1s churn 2\n", "expected key=value");
  expect_parse_error("-1s phase x\n", "bad time");
  expect_parse_error("1s\n", "expected '<time> <command> ...'");
}

TEST(ScenarioText, LoadScenarioFileErrors) {
  EXPECT_THROW(harness::load_scenario_file("/nonexistent/file.scn"),
               std::runtime_error);
}

// ---------------------------------------------------------------------
// Script validation

FaultEvent crash_ids(std::vector<NodeId> ids) {
  FaultEvent e;
  e.kind = FaultKind::crash;
  e.selector = SelectorKind::ids;
  e.ids = std::move(ids);
  return e;
}

TEST(ScenarioValidate, AcceptsInRangeScript) {
  ScenarioScript s;
  s.events.push_back(crash_ids({0, 9}));
  EXPECT_NO_THROW(s.validate(10));
}

TEST(ScenarioValidate, RejectsBadScripts) {
  {
    ScenarioScript s;
    s.events.push_back(crash_ids({10}));
    EXPECT_THROW(s.validate(10), CheckFailure);  // id out of range
  }
  {
    ScenarioScript s;
    FaultEvent e;
    e.kind = FaultKind::crash;
    e.selector = SelectorKind::all_crashed;
    s.events.push_back(e);
    EXPECT_THROW(s.validate(10), CheckFailure);  // recover-only selector
  }
  {
    ScenarioScript s;
    FaultEvent e;
    e.kind = FaultKind::crash;
    e.selector = SelectorKind::random;
    e.count = 10;
    s.events.push_back(e);
    EXPECT_THROW(s.validate(10), CheckFailure);  // count >= num_nodes
  }
  {
    ScenarioScript s;
    FaultEvent e;
    e.kind = FaultKind::loss_burst;
    e.value = 1.0;
    s.events.push_back(e);
    EXPECT_THROW(s.validate(10), CheckFailure);  // loss must be < 1
  }
  {
    ScenarioScript s;
    FaultEvent e;
    e.kind = FaultKind::latency_spike;
    e.value = 0.0;
    s.events.push_back(e);
    EXPECT_THROW(s.validate(10), CheckFailure);  // factor must be > 0
  }
  {
    ScenarioScript s;
    FaultEvent e;
    e.kind = FaultKind::loss_burst;
    e.value = 0.1;
    e.link_a = 1;  // link_b missing
    s.events.push_back(e);
    EXPECT_THROW(s.validate(10), CheckFailure);
  }
  {
    ScenarioScript s;
    FaultEvent e;
    e.kind = FaultKind::partition;
    e.groups = {{1, 2}, {2, 3}};  // node 2 in two groups
    s.events.push_back(e);
    EXPECT_THROW(s.validate(10), CheckFailure);
  }
  {
    ScenarioScript s;
    FaultEvent e;
    e.kind = FaultKind::noise_ramp;
    e.value = 1.5;
    s.events.push_back(e);
    EXPECT_THROW(s.validate(10), CheckFailure);
  }
  {
    ScenarioScript s;
    FaultEvent e;
    e.kind = FaultKind::phase;
    e.label = "a,b";  // commas break the CSV trace format
    s.events.push_back(e);
    EXPECT_THROW(s.validate(10), CheckFailure);
  }
}

TEST(ScenarioValidate, DescribeIsHumanReadable) {
  FaultEvent e;
  e.kind = FaultKind::crash;
  e.selector = SelectorKind::best;
  e.count = 5;
  EXPECT_EQ(describe(e), "crash best 5");
  FaultEvent p;
  p.kind = FaultKind::phase;
  p.label = "kill";
  EXPECT_EQ(describe(p), "phase \"kill\"");
}

// ---------------------------------------------------------------------
// FaultInjector

struct InjectorFixture {
  sim::Simulator sim;
  net::ConstantLatencyModel latency{10 * kMillisecond};
  net::Transport transport;
  std::vector<NodeId> crashes, recoveries;
  std::vector<std::string> phases;
  std::vector<double> churn_rates, noise_levels;

  explicit InjectorFixture(std::uint32_t n = 10)
      : transport(sim, latency, n, {}, Rng(3)) {}

  InjectorHooks hooks() {
    InjectorHooks h;
    h.on_crash = [this](NodeId id) { crashes.push_back(id); };
    h.on_recover = [this](NodeId id) { recoveries.push_back(id); };
    h.on_phase = [this](const std::string& l) { phases.push_back(l); };
    h.on_churn_rate = [this](double r) { churn_rates.push_back(r); };
    h.on_noise = [this](double o) { noise_levels.push_back(o); };
    return h;
  }

  FaultInjector make(ScenarioScript script,
                     std::vector<NodeId> best_first = {}) {
    return FaultInjector(sim, transport, std::move(script),
                         std::move(best_first), Rng(99), hooks());
  }
};

TEST(FaultInjector, CrashBestUsesRankingAndSkipsDeadNodes) {
  InjectorFixture f;
  ScenarioScript script;
  FaultEvent e;
  e.at = 1 * kSecond;
  e.kind = FaultKind::crash;
  e.selector = SelectorKind::best;
  e.count = 3;
  script.events.push_back(e);
  // Node 7 (the best) is already down: the selector must skip it and
  // take the next three in ranking order.
  f.transport.silence(7);
  FaultInjector inj = f.make(script, {7, 4, 1, 0, 2, 3, 5, 6, 8, 9});
  inj.arm(0);
  f.sim.run();
  EXPECT_EQ(f.crashes, (std::vector<NodeId>{4, 1, 0}));
  EXPECT_EQ(inj.crashed(), (std::vector<NodeId>{4, 1, 0}));
  EXPECT_TRUE(f.transport.is_silenced(4));
  EXPECT_EQ(inj.events_applied(), 3u);
}

TEST(FaultInjector, WorstSelectorTakesRankingTail) {
  InjectorFixture f;
  ScenarioScript script;
  FaultEvent e;
  e.kind = FaultKind::crash;
  e.selector = SelectorKind::worst;
  e.count = 2;
  script.events.push_back(e);
  FaultInjector inj = f.make(script, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  inj.arm(0);
  f.sim.run();
  EXPECT_EQ(f.crashes, (std::vector<NodeId>{9, 8}));
}

TEST(FaultInjector, RecoverAllRevivesEveryCrashedNode) {
  InjectorFixture f;
  ScenarioScript script;
  script.events.push_back(crash_ids({2, 5, 8}));
  script.events.back().at = 1 * kSecond;
  FaultEvent rec;
  rec.at = 2 * kSecond;
  rec.kind = FaultKind::recover;
  rec.selector = SelectorKind::all_crashed;
  script.events.push_back(rec);
  FaultInjector inj = f.make(script);
  inj.arm(0);
  f.sim.run();
  EXPECT_EQ(f.crashes, (std::vector<NodeId>{2, 5, 8}));
  EXPECT_EQ(f.recoveries, (std::vector<NodeId>{2, 5, 8}));
  EXPECT_TRUE(inj.crashed().empty());
  EXPECT_FALSE(f.transport.is_silenced(5));
  EXPECT_EQ(inj.events_applied(), 6u);
}

TEST(FaultInjector, RandomSelectorDrawsRequestedCountOfLiveNodes) {
  InjectorFixture f;
  ScenarioScript script;
  FaultEvent e;
  e.kind = FaultKind::crash;
  e.selector = SelectorKind::random;
  e.count = 4;
  script.events.push_back(e);
  FaultInjector inj = f.make(script);
  inj.arm(0);
  f.sim.run();
  EXPECT_EQ(f.crashes.size(), 4u);
  for (const NodeId id : f.crashes) EXPECT_TRUE(f.transport.is_silenced(id));
}

TEST(FaultInjector, CrashIsIdempotentOnDeadNodes) {
  InjectorFixture f;
  ScenarioScript script;
  script.events.push_back(crash_ids({3}));
  script.events.push_back(crash_ids({3}));
  script.events.back().at = 1 * kSecond;
  FaultInjector inj = f.make(script);
  inj.arm(0);
  f.sim.run();
  // The second crash of an already-dead node is a no-op.
  EXPECT_EQ(f.crashes, (std::vector<NodeId>{3}));
  EXPECT_EQ(inj.events_applied(), 1u);
}

TEST(FaultInjector, PartitionAndHealDriveTransport) {
  InjectorFixture f;
  ScenarioScript script;
  FaultEvent part;
  part.at = 1 * kSecond;
  part.kind = FaultKind::partition;
  part.groups = {{0, 1, 2}};
  script.events.push_back(part);
  FaultEvent heal;
  heal.at = 2 * kSecond;
  heal.kind = FaultKind::heal;
  script.events.push_back(heal);
  FaultInjector inj = f.make(script);
  inj.arm(0);

  int received = 0;
  f.transport.register_handler(
      5, [&](NodeId, const net::PacketPtr&) { ++received; });
  struct P final : public net::Packet {};
  // During the partition 0 -> 5 is cross-group and dropped; after the
  // heal it goes through.
  f.sim.schedule_at(1 * kSecond + 1, [&] {
    f.transport.send(0, 5, std::make_shared<P>(), 10, false);
  });
  f.sim.schedule_at(2 * kSecond + 1, [&] {
    f.transport.send(0, 5, std::make_shared<P>(), 10, false);
  });
  f.sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.transport.partition_drops(), 1u);
  EXPECT_EQ(inj.events_applied(), 2u);
}

TEST(FaultInjector, LossBurstRestoresAfterDuration) {
  InjectorFixture f;
  ScenarioScript script;
  FaultEvent e;
  e.at = 1 * kSecond;
  e.kind = FaultKind::loss_burst;
  e.value = 0.5;
  e.duration = 3 * kSecond;
  script.events.push_back(e);
  FaultInjector inj = f.make(script);
  inj.arm(0);
  f.sim.run_until(1 * kSecond);
  EXPECT_DOUBLE_EQ(f.transport.extra_loss(), 0.5);
  f.sim.run();
  EXPECT_DOUBLE_EQ(f.transport.extra_loss(), 0.0);
  EXPECT_EQ(inj.events_applied(), 2u);  // burst + restore
}

TEST(FaultInjector, LinkLatencySpikeRestores) {
  InjectorFixture f;
  ScenarioScript script;
  FaultEvent e;
  e.at = 1 * kSecond;
  e.kind = FaultKind::latency_spike;
  e.value = 4.0;
  e.duration = 2 * kSecond;
  e.link_a = 0;
  e.link_b = 1;
  script.events.push_back(e);
  FaultInjector inj = f.make(script);
  inj.arm(0);

  std::vector<SimTime> arrivals;
  f.transport.register_handler(1, [&](NodeId, const net::PacketPtr&) {
    arrivals.push_back(f.sim.now());
  });
  struct P final : public net::Packet {};
  f.sim.schedule_at(1 * kSecond + 1, [&] {
    f.transport.send(0, 1, std::make_shared<P>(), 10, false);  // spiked
  });
  f.sim.schedule_at(4 * kSecond, [&] {
    f.transport.send(0, 1, std::make_shared<P>(), 10, false);  // restored
  });
  f.sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 1 * kSecond + 1 + 40 * kMillisecond);
  EXPECT_EQ(arrivals[1], 4 * kSecond + 10 * kMillisecond);
}

TEST(FaultInjector, ChurnIntervalCallsHookWithRateThenZero) {
  InjectorFixture f;
  ScenarioScript script;
  FaultEvent e;
  e.at = 1 * kSecond;
  e.kind = FaultKind::churn;
  e.value = 2.5;
  e.duration = 5 * kSecond;
  script.events.push_back(e);
  FaultInjector inj = f.make(script);
  inj.arm(0);
  f.sim.run();
  EXPECT_EQ(f.churn_rates, (std::vector<double>{2.5, 0.0}));
}

TEST(FaultInjector, NoiseRampStepsLinearlyToTarget) {
  InjectorFixture f;
  ScenarioScript script;
  FaultEvent e;
  e.kind = FaultKind::noise_ramp;
  e.value = 0.5;
  e.duration = 10 * kSecond;
  script.events.push_back(e);
  FaultInjector inj = f.make(script);
  inj.arm(0);
  f.sim.run();
  ASSERT_EQ(f.noise_levels.size(), 10u);
  EXPECT_NEAR(f.noise_levels[0], 0.05, 1e-12);
  EXPECT_NEAR(f.noise_levels[4], 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(f.noise_levels[9], 0.5);
}

TEST(FaultInjector, NoiseRampStartsFromInitialLevel) {
  InjectorFixture f;
  ScenarioScript script;
  FaultEvent e;
  e.kind = FaultKind::noise_ramp;
  e.value = 0.0;  // ramp *down*
  e.duration = 2 * kSecond;
  script.events.push_back(e);
  FaultInjector inj = f.make(script);
  inj.set_initial_noise(1.0);
  inj.arm(0);
  f.sim.run();
  ASSERT_EQ(f.noise_levels.size(), 10u);
  EXPECT_NEAR(f.noise_levels[0], 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(f.noise_levels[9], 0.0);
}

TEST(FaultInjector, ImmediateNoiseStepAndPhaseMarkers) {
  InjectorFixture f;
  ScenarioScript script;
  FaultEvent phase;
  phase.kind = FaultKind::phase;
  phase.label = "baseline";
  script.events.push_back(phase);
  FaultEvent noise;
  noise.at = 1 * kSecond;
  noise.kind = FaultKind::noise_ramp;
  noise.value = 0.3;
  script.events.push_back(noise);
  FaultInjector inj = f.make(script);
  inj.arm(5 * kSecond);  // origin offset: events fire at origin + at
  f.sim.run_until(5 * kSecond);
  EXPECT_EQ(f.phases, (std::vector<std::string>{"baseline"}));
  EXPECT_TRUE(f.noise_levels.empty());
  f.sim.run();
  EXPECT_EQ(f.noise_levels, (std::vector<double>{0.3}));
}

TEST(FaultInjector, ArmTwiceIsAnError) {
  InjectorFixture f;
  ScenarioScript script;
  FaultInjector inj = f.make(script);
  inj.arm(0);
  EXPECT_THROW(inj.arm(0), CheckFailure);
}

TEST(FaultInjector, BestSelectorWithoutRankingIsAnError) {
  InjectorFixture f;
  ScenarioScript script;
  FaultEvent e;
  e.kind = FaultKind::crash;
  e.selector = SelectorKind::best;
  e.count = 1;
  script.events.push_back(e);
  FaultInjector inj = f.make(script);  // no best_first ranking
  inj.arm(0);
  EXPECT_THROW(f.sim.run(), CheckFailure);
}

// ---------------------------------------------------------------------
// PhaseWindows

TEST(PhaseWindows, AttributesMessagesToSendPhaseAndPayloadToWallClock) {
  stats::PhaseWindows pw(0);
  pw.start_phase(0, "a");
  pw.on_multicast(0, 2);
  pw.on_payload(0, 1);
  pw.on_delivery(0, 10.0, false);
  pw.start_phase(100, "b");
  // Late delivery of the phase-a message: counts toward phase a.
  pw.on_delivery(0, 30.0, false);
  // Payload sent now belongs to phase b.
  pw.on_payload(1, 2);
  pw.on_multicast(1, 2);
  pw.on_delivery(1, 5.0, false);
  pw.on_delivery(1, 7.0, false);
  const auto reports = pw.finalize(200);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].label, "a");
  EXPECT_EQ(reports[0].messages, 1u);
  EXPECT_EQ(reports[0].deliveries, 2u);
  EXPECT_DOUBLE_EQ(reports[0].reliability, 1.0);
  EXPECT_DOUBLE_EQ(reports[0].atomic_fraction, 1.0);
  EXPECT_DOUBLE_EQ(reports[0].mean_latency_ms, 20.0);
  EXPECT_EQ(reports[0].payload_packets, 1u);
  EXPECT_EQ(reports[0].end, 100);
  EXPECT_EQ(reports[1].label, "b");
  EXPECT_EQ(reports[1].messages, 1u);
  EXPECT_EQ(reports[1].payload_packets, 1u);
  EXPECT_DOUBLE_EQ(reports[1].mean_latency_ms, 6.0);
  EXPECT_EQ(reports[1].end, 200);
}

TEST(PhaseWindows, PartialDeliveryReliability) {
  stats::PhaseWindows pw(0);
  pw.start_phase(0, "kill");
  pw.on_multicast(0, 4);
  pw.on_delivery(0, 1.0, false);
  pw.on_delivery(0, 1.0, false);  // 2 of 4 delivered
  pw.on_multicast(1, 4);          // 0 of 4 delivered
  const auto reports = pw.finalize(10);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_DOUBLE_EQ(reports[0].reliability, 0.25);  // (0.5 + 0) / 2
  EXPECT_DOUBLE_EQ(reports[0].atomic_fraction, 0.0);
}

TEST(PhaseWindows, OriginDeliveryCountsForReliabilityNotLatency) {
  stats::PhaseWindows pw(0);
  pw.start_phase(0, "p");
  pw.on_multicast(0, 1);
  pw.on_delivery(0, 0.0, true);  // origin's own delivery
  const auto reports = pw.finalize(10);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_DOUBLE_EQ(reports[0].reliability, 1.0);
  EXPECT_DOUBLE_EQ(reports[0].mean_latency_ms, 0.0);
}

TEST(PhaseWindows, PreWindowKeptOnlyWhenUsed) {
  {
    // Activity before the first phase marker: "(pre)" survives.
    stats::PhaseWindows pw(0);
    pw.on_multicast(0, 1);
    pw.start_phase(50, "late");
    const auto reports = pw.finalize(100);
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].label, "(pre)");
    EXPECT_EQ(reports[0].messages, 1u);
  }
  {
    // Phase starts immediately: the empty zero-width "(pre)" is dropped.
    stats::PhaseWindows pw(0);
    pw.start_phase(0, "baseline");
    pw.on_multicast(0, 1);
    const auto reports = pw.finalize(100);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].label, "baseline");
  }
}

TEST(PhaseWindows, UnknownSeqAndReliabilityCap) {
  stats::PhaseWindows pw(0);
  pw.start_phase(0, "p");
  pw.on_delivery(42, 1.0, false);  // warm-up message: ignored
  pw.on_multicast(0, 1);
  pw.on_delivery(0, 1.0, false);
  pw.on_delivery(0, 1.0, false);  // revived node: 2 of 1 "expected"
  const auto reports = pw.finalize(10);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_DOUBLE_EQ(reports[0].reliability, 1.0);  // capped
}

TEST(PhaseWindows, TopShareDetectsConcentrationPerPhase) {
  stats::PhaseWindows pw(0);
  pw.start_phase(0, "uniform");
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = a + 1; b < 21; ++b) pw.on_payload(a, b);
  }
  pw.start_phase(100, "hot");
  for (int i = 0; i < 200; ++i) pw.on_payload(0, 1);
  for (NodeId a = 2; a < 20; ++a) {
    for (NodeId b = a + 1; b < 21; ++b) pw.on_payload(a, b);
  }
  const auto reports = pw.finalize(200);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_NEAR(reports[0].top5_connection_share, 0.05, 0.02);
  EXPECT_GT(reports[1].top5_connection_share, 0.4);
}

// ---------------------------------------------------------------------
// End-to-end: §6.3 kill-and-recover through the experiment harness

TEST(FaultExperiment, KillBestAndRecoverKeepsReliability) {
  harness::ExperimentConfig c = small_config(11);
  c.num_messages = 60;
  c.strategy = harness::StrategySpec::make_ttl(2);
  c.scenario = harness::parse_scenario(
      "0s  phase baseline\n"
      "5s  phase kill\n"
      "5s  crash best 3\n"
      "12s phase recovered\n"
      "12s recover all\n");
  const harness::ExperimentResult r = harness::run_experiment(c);
  ASSERT_EQ(r.phase_reports.size(), 3u);
  EXPECT_EQ(r.phase_reports[0].label, "baseline");
  EXPECT_EQ(r.phase_reports[1].label, "kill");
  EXPECT_EQ(r.phase_reports[2].label, "recovered");
  // 3 phase markers + 3 crashes + 3 recoveries.
  EXPECT_EQ(r.faults_injected, 9u);
  // The epidemic tolerates the kill: every phase stays highly reliable
  // (expected counts are relative to the live set at send time).
  for (const auto& p : r.phase_reports) {
    EXPECT_GT(p.reliability, 0.9) << p.label;
    EXPECT_GT(p.messages, 0u) << p.label;
  }
  // Phase windows tile the measurement interval.
  EXPECT_EQ(r.phase_reports[0].end, r.phase_reports[1].start);
  EXPECT_EQ(r.phase_reports[1].end, r.phase_reports[2].start);
}

TEST(FaultExperiment, ScenarioNoiseRampWrapsStrategy) {
  harness::ExperimentConfig c = small_config(13);
  c.num_messages = 20;
  c.scenario = harness::parse_scenario(
      "0s phase clean\n"
      "2s noise to=0.8\n"
      "2s phase noisy\n");
  const harness::ExperimentResult r = harness::run_experiment(c);
  ASSERT_EQ(r.phase_reports.size(), 2u);
  // Flat pi=1.0 with heavy Eager?-noise still delivers (pull recovery),
  // so this mainly asserts the ramp plumbing doesn't break the run.
  EXPECT_GT(r.mean_delivery_fraction, 0.95);
}

TEST(FaultExperiment, LossBurstDuringSaturationComposesDeterministically) {
  // Satellite regression: the bandwidth queue and scenario fault
  // modifiers compose. A k-publisher workload saturates the bounded
  // egress while a scripted loss burst fires mid-run; the whole thing
  // must replay bit-identically (kv text equality) and both fault paths
  // must actually trigger.
  harness::ExperimentConfig c = small_config(23);
  c.strategy = harness::StrategySpec::make_ttl(2);
  c.bandwidth_bps = 2'000'000;
  c.egress_buffer_bytes = 32 * 1024;
  c.purge_policy = net::TransportOptions::PurgePolicy::drop_oldest;
  load::WorkloadSpec wl;
  wl.duration = 8 * kSecond;
  for (int p = 0; p < 4; ++p) {
    load::PublisherSpec pub;
    pub.rate = 20.0;
    wl.publishers.push_back(pub);
  }
  c.workload = wl;
  c.scenario = harness::parse_scenario(
      "0s phase ramp\n"
      "3s phase lossy\n"
      "3s loss rate=0.3 for=2s\n"
      "5s phase recovered\n");
  const harness::ExperimentResult a = harness::run_experiment(c);
  const harness::ExperimentResult b = harness::run_experiment(c);
  EXPECT_EQ(harness::format_result_kv(a), harness::format_result_kv(b));
  // The loss burst fired (apply + restore) alongside the phase markers.
  EXPECT_GT(a.faults_injected, 3u);
  EXPECT_GT(a.packets_lost, 0u);
  // The workload really drove the run into serialization.
  EXPECT_GT(a.offered_msgs, 200u);
  EXPECT_GT(a.egress_serialized_packets, 0u);
  EXPECT_GT(a.egress_queue_delay_mean_ms, 0.0);
  ASSERT_EQ(a.phase_reports.size(), 3u);
  for (const auto& p : a.phase_reports) {
    EXPECT_GT(p.offered_per_s, 0.0) << p.label;
    EXPECT_GT(p.goodput_per_s, 0.0) << p.label;
  }
}

TEST(FaultExperiment, ScenarioValidatedAgainstNodeCount) {
  harness::ExperimentConfig c = small_config(7);
  c.scenario.events.push_back(crash_ids({999}));
  EXPECT_THROW(harness::run_experiment(c), CheckFailure);
}

TEST(FaultExperiment, PartitionScenarioReducesCrossGroupReliability) {
  harness::ExperimentConfig c = small_config(17);
  c.num_messages = 40;
  c.scenario = harness::parse_scenario(
      "0s phase baseline\n"
      "4s phase split\n"
      "4s partition 0..11\n"
      "10s phase healed\n"
      "10s heal\n");
  const harness::ExperimentResult r = harness::run_experiment(c);
  ASSERT_EQ(r.phase_reports.size(), 3u);
  // Messages sent during the split cannot cross it: reliability dips
  // well below the surrounding phases, then recovers after the heal.
  EXPECT_GT(r.phase_reports[0].reliability, 0.95);
  EXPECT_LT(r.phase_reports[1].reliability,
            r.phase_reports[0].reliability - 0.2);
  EXPECT_GT(r.phase_reports[2].reliability, 0.9);
}

}  // namespace
}  // namespace esm::fault
