// Statistical quality of the peer sampling substrates.
//
// The paper's load-balance claim (§1: "as neighbors are uniform randomly
// chosen, the load is balanced among all nodes") rests on PeerSample(f)
// being approximately uniform. These tests draw many samples and apply a
// chi-square goodness-of-fit check against the uniform distribution —
// loose thresholds, since partial-view protocols are only *approximately*
// uniform over time.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/transport.hpp"
#include "overlay/cyclon.hpp"
#include "overlay/neem.hpp"
#include "sim/simulator.hpp"

namespace esm::overlay {
namespace {

/// Chi-square statistic of observed counts against a uniform expectation.
double chi_square_uniform(const std::vector<std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  const double expected =
      static_cast<double>(total) / static_cast<double>(counts.size());
  double chi = 0.0;
  for (const auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi += d * d / expected;
  }
  return chi;
}

TEST(Uniformity, OracleSamplerIsUniform) {
  sim::Simulator sim;
  net::ConstantLatencyModel latency(1);
  constexpr std::uint32_t kN = 50;
  net::Transport transport(sim, latency, kN, {}, Rng(1));
  FullMembershipSampler sampler(transport, 0, Rng(2));
  std::vector<std::uint64_t> counts(kN, 0);
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    for (const NodeId n : sampler.sample(5)) ++counts[n];
  }
  counts.erase(counts.begin());  // self is never sampled
  // df = 48; the 99.9% chi-square critical value is ~85. Allow slack.
  EXPECT_LT(chi_square_uniform(counts), 100.0);
}

TEST(Uniformity, CyclonSamplingIsNearUniformOverTime) {
  // Sampling through a mixing partial view: aggregate over many rounds,
  // every node should be selected roughly equally often by node 0.
  sim::Simulator sim;
  net::ConstantLatencyModel latency(5 * kMillisecond);
  constexpr std::uint32_t kN = 40;
  net::Transport transport(sim, latency, kN, {}, Rng(3));
  std::vector<std::unique_ptr<CyclonNode>> nodes;
  Rng boot(17);
  for (NodeId id = 0; id < kN; ++id) {
    nodes.push_back(std::make_unique<CyclonNode>(
        sim, transport, id, OverlayParams{}, Rng(100 + id)));
    std::vector<NodeId> contacts;
    while (contacts.size() < 15 && contacts.size() + 1 < kN) {
      const NodeId c = static_cast<NodeId>(boot.below(kN));
      if (c != id &&
          std::find(contacts.begin(), contacts.end(), c) == contacts.end()) {
        contacts.push_back(c);
      }
    }
    nodes[id]->bootstrap(contacts);
    transport.register_handler(id, [&nodes, id](NodeId src,
                                                const net::PacketPtr& p) {
      nodes[id]->handle_packet(src, p);
    });
  }
  for (auto& n : nodes) n->start();

  std::vector<std::uint64_t> counts(kN, 0);
  for (int round = 0; round < 3000; ++round) {
    sim.run_until(sim.now() + 100 * kMillisecond);
    for (const NodeId n : nodes[0]->sample(5)) ++counts[n];
  }
  counts.erase(counts.begin());
  const double expected = 3000.0 * 5.0 / (kN - 1);
  // Every peer selected within a factor ~2 of the uniform expectation.
  for (const auto c : counts) {
    EXPECT_GT(static_cast<double>(c), expected * 0.45);
    EXPECT_LT(static_cast<double>(c), expected * 2.0);
  }
}

TEST(Uniformity, NeemSamplingIsNearUniformOverTime) {
  sim::Simulator sim;
  net::ConstantLatencyModel latency(5 * kMillisecond);
  constexpr std::uint32_t kN = 40;
  net::Transport transport(sim, latency, kN, {}, Rng(5));
  std::vector<std::unique_ptr<NeemNode>> nodes;
  Rng boot(23);
  for (NodeId id = 0; id < kN; ++id) {
    nodes.push_back(std::make_unique<NeemNode>(sim, transport, id,
                                               NeemParams{}, Rng(300 + id)));
    transport.register_handler(id, [&nodes, id](NodeId src,
                                                const net::PacketPtr& p) {
      nodes[id]->handle_packet(src, p);
    });
  }
  for (NodeId id = 0; id < kN; ++id) {
    std::vector<NodeId> contacts;
    while (contacts.size() < 5) {
      const NodeId c = static_cast<NodeId>(boot.below(kN));
      if (c != id &&
          std::find(contacts.begin(), contacts.end(), c) == contacts.end()) {
        contacts.push_back(c);
      }
    }
    nodes[id]->bootstrap(contacts);
    nodes[id]->start();
  }

  std::vector<std::uint64_t> counts(kN, 0);
  sim.run_until(10 * kSecond);  // let the overlay form
  for (int round = 0; round < 3000; ++round) {
    sim.run_until(sim.now() + 100 * kMillisecond);
    for (const NodeId n : nodes[0]->sample(5)) ++counts[n];
  }
  counts.erase(counts.begin());
  const double expected = 3000.0 * 5.0 / (kN - 1);
  // Connection replacement mixes more slowly than Cyclon's descriptor
  // swaps: allow a wider band, but no peer may be starved or dominate.
  for (const auto c : counts) {
    EXPECT_GT(static_cast<double>(c), expected * 0.2);
    EXPECT_LT(static_cast<double>(c), expected * 3.0);
  }
}

TEST(Uniformity, GossipTargetsBalanceLoad) {
  // End-to-end version of §1's claim: under eager gossip every node
  // transmits approximately the same number of payloads.
  sim::Simulator sim;
  net::ConstantLatencyModel latency(5 * kMillisecond);
  constexpr std::uint32_t kN = 40;
  net::Transport transport(sim, latency, kN, {}, Rng(7));
  std::vector<std::unique_ptr<FullMembershipSampler>> samplers;
  for (NodeId id = 0; id < kN; ++id) {
    samplers.push_back(
        std::make_unique<FullMembershipSampler>(transport, id, Rng(400 + id)));
  }
  std::vector<std::uint64_t> received(kN, 0);
  for (int round = 0; round < 20000; ++round) {
    const NodeId src = static_cast<NodeId>(round % kN);
    for (const NodeId dst : samplers[src]->sample(5)) ++received[dst];
  }
  std::uint64_t total = 0;
  for (const auto r : received) total += r;
  const double expected = static_cast<double>(total) / kN;
  for (const auto r : received) {
    EXPECT_NEAR(static_cast<double>(r), expected, 0.10 * expected);
  }
}

}  // namespace
}  // namespace esm::overlay
