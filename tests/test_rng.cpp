#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <cmath>
#include <set>
#include <unordered_set>

namespace esm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng parent(99);
  Rng c1 = parent.split(7);
  Rng c2 = parent.split(7);
  Rng c3 = parent.split(8);
  EXPECT_EQ(c1(), c2());
  // Different labels should diverge immediately with high probability.
  Rng c1b = parent.split(7);
  EXPECT_NE(c1b(), c3());
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(5), b(5);
  (void)a.split(1);
  EXPECT_EQ(a(), b());
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(42);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 0.05 * kDraws / kBuckets);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), CheckFailure);
}

TEST(Rng, RangeInclusive) {
  Rng rng(42);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(42);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(42);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(42);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

TEST(Rng, SampleReturnsDistinctSubset) {
  Rng rng(42);
  const std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (int trial = 0; trial < 100; ++trial) {
    const auto picked = rng.sample(items, 4);
    ASSERT_EQ(picked.size(), 4u);
    std::set<int> uniq(picked.begin(), picked.end());
    EXPECT_EQ(uniq.size(), 4u);
    for (const int p : picked) {
      EXPECT_TRUE(std::find(items.begin(), items.end(), p) != items.end());
    }
  }
}

TEST(Rng, SampleMoreThanAvailableReturnsAll) {
  Rng rng(42);
  const std::vector<int> items{1, 2, 3};
  const auto picked = rng.sample(items, 10);
  EXPECT_EQ(picked.size(), 3u);
  std::set<int> uniq(picked.begin(), picked.end());
  EXPECT_EQ(uniq.size(), 3u);
}

TEST(Rng, SampleIsUnbiased) {
  Rng rng(42);
  std::vector<int> items{0, 1, 2, 3, 4};
  int first_count[5] = {};
  for (int trial = 0; trial < 50000; ++trial) {
    ++first_count[rng.sample(items, 1)[0]];
  }
  for (const int c : first_count) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, MsgIdsAreUnique) {
  Rng rng(42);
  std::unordered_set<MsgId, MsgIdHash> seen;
  for (int i = 0; i < 100000; ++i) {
    EXPECT_TRUE(seen.insert(rng.next_msg_id()).second);
  }
}

TEST(MsgId, ToStringIsStableHex) {
  const MsgId id{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(to_string(id), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(to_string(MsgId{}), std::string(32, '0'));
}

TEST(MsgId, HashDistinguishes) {
  MsgIdHash h;
  EXPECT_NE(h(MsgId{1, 0}), h(MsgId{0, 1}));
}

}  // namespace
}  // namespace esm
