#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/experiment.hpp"
#include "obs/goodput.hpp"
#include "obs/lifecycle.hpp"
#include "sim/simulator.hpp"

namespace esm::obs {
namespace {

using core::PayloadScheduler;
using LazyEvent = PayloadScheduler::LazyEvent;

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counter("x"), 0u);
  reg.add_counter("x");
  reg.add_counter("x", 4);
  EXPECT_EQ(reg.counter("x"), 5u);
  EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistry, GaugesKeepMax) {
  MetricsRegistry reg;
  reg.gauge_max("peak", 2.5);
  reg.gauge_max("peak", 1.0);  // lower value must not overwrite
  EXPECT_DOUBLE_EQ(reg.gauge("peak"), 2.5);
  reg.gauge_max("peak", 7.0);
  EXPECT_DOUBLE_EQ(reg.gauge("peak"), 7.0);
}

TEST(MetricsRegistry, HistogramsCreatedOnFirstUse) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_histogram("h"), nullptr);
  reg.histogram("h").add(10);
  ASSERT_NE(reg.find_histogram("h"), nullptr);
  EXPECT_EQ(reg.find_histogram("h")->count(), 1u);
}

TEST(MetricsRegistry, MergeSemanticsPerKind) {
  MetricsRegistry a, b;
  a.add_counter("c", 2);
  b.add_counter("c", 3);
  b.add_counter("only_b", 1);
  a.gauge_max("g", 1.0);
  b.gauge_max("g", 9.0);
  a.histogram("h").add(1);
  b.histogram("h").add(100);
  a.merge(b);
  EXPECT_EQ(a.counter("c"), 5u);
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 9.0);
  EXPECT_EQ(a.find_histogram("h")->count(), 2u);
  EXPECT_EQ(a.find_histogram("h")->max(), 100u);
}

TEST(MetricsRegistry, MergeIsOrderInsensitive) {
  // The determinism keystone for --jobs invariance: merging the same set
  // of registries in any order produces byte-identical JSON.
  std::vector<MetricsRegistry> parts(3);
  parts[0].add_counter("a", 1);
  parts[0].histogram("h").add(5);
  parts[1].add_counter("a", 10);
  parts[1].gauge_max("g", 3.5);
  parts[2].add_counter("b", 7);
  parts[2].gauge_max("g", 2.0);
  parts[2].histogram("h").add(500);

  MetricsRegistry forward, backward;
  for (const auto& p : parts) forward.merge(p);
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    backward.merge(*it);
  }
  EXPECT_EQ(forward.to_json(), backward.to_json());
}

TEST(MetricsRegistry, JsonSortedAndStable) {
  MetricsRegistry reg;
  reg.add_counter("zeta", 1);
  reg.add_counter("alpha", 2);
  reg.gauge_max("g", 0.5);
  reg.histogram("h").add(3);
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{\"alpha\":2,\"zeta\":1},"
            "\"gauges\":{\"g\":0.5},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":3,\"min\":3,"
            "\"max\":3,\"buckets\":[[3,1]]}}}");
}

TEST(RunMetrics, MergeAlignsNodesAndSumsRuns) {
  RunMetrics a, b;
  a.per_node.resize(2);
  b.per_node.resize(2);
  a.aggregate.add_counter("c", 1);
  b.aggregate.add_counter("c", 2);
  a.per_node[0].add_counter("n", 1);
  b.per_node[0].add_counter("n", 5);
  b.per_node[1].add_counter("n", 7);
  a.merge(b);
  EXPECT_EQ(a.runs, 2u);
  EXPECT_EQ(a.aggregate.counter("c"), 3u);
  EXPECT_EQ(a.per_node[0].counter("n"), 6u);
  EXPECT_EQ(a.per_node[1].counter("n"), 7u);
}

TEST(LifecycleTracker, RecoveredEpisodeProducesLatency) {
  sim::Simulator sim;
  RunMetrics metrics;
  LifecycleTracker tracker(sim, 2, metrics);
  const MsgId id{1, 1};
  sim.schedule_at(10 * kMillisecond, [&] {
    tracker.on_lazy_event(1, id, LazyEvent::kFirstIHave, 0);
    tracker.on_lazy_event(1, id, LazyEvent::kIWant, 0);
  });
  sim.schedule_at(30 * kMillisecond, [&] {
    tracker.on_lazy_event(1, id, LazyEvent::kRecovered, 0);
  });
  sim.run();
  tracker.finalize();
  EXPECT_EQ(metrics.aggregate.counter("recovery_episodes"), 1u);
  EXPECT_EQ(metrics.aggregate.counter("recovery_recovered"), 1u);
  EXPECT_EQ(metrics.aggregate.counter("recovery_stalled"), 0u);
  EXPECT_EQ(metrics.aggregate.counter("iwants_sent"), 1u);
  ASSERT_NE(metrics.aggregate.find_histogram("recovery_ms"), nullptr);
  EXPECT_EQ(metrics.aggregate.find_histogram("recovery_ms")->sum(), 20u);
  // Per-node registry mirrors the aggregate for the owning node.
  EXPECT_EQ(metrics.per_node.at(1).counter("recovery_recovered"), 1u);
  EXPECT_EQ(metrics.per_node.at(0).counter("recovery_recovered"), 0u);
}

TEST(LifecycleTracker, OpenEpisodeCountsAsStalled) {
  sim::Simulator sim;
  RunMetrics metrics;
  LifecycleTracker tracker(sim, 1, metrics);
  const MsgId id{2, 2};
  tracker.on_lazy_event(0, id, LazyEvent::kFirstIHave, 0);
  tracker.on_lazy_event(0, id, LazyEvent::kIWant, 0);
  tracker.on_lazy_event(0, id, LazyEvent::kIWantRetry, 0);
  tracker.finalize();
  EXPECT_EQ(metrics.aggregate.counter("recovery_stalled"), 1u);
  EXPECT_EQ(metrics.aggregate.counter("recovery_recovered"), 0u);
  EXPECT_EQ(metrics.aggregate.counter("iwant_retries"), 1u);
}

TEST(LifecycleTracker, GaveUpThenEagerDeliveryIsRecovered) {
  // The scheduler abandoned the lazy path, but the payload later arrived
  // eagerly — the episode must classify as recovered, not stalled.
  sim::Simulator sim;
  RunMetrics metrics;
  LifecycleTracker tracker(sim, 1, metrics);
  const MsgId id{3, 3};
  tracker.on_lazy_event(0, id, LazyEvent::kFirstIHave, 0);
  tracker.on_lazy_event(0, id, LazyEvent::kGaveUp, kInvalidNode);
  tracker.on_delivery(0, id, 5 * kMillisecond);
  tracker.finalize();
  EXPECT_EQ(metrics.aggregate.counter("recovery_gave_up"), 1u);
  EXPECT_EQ(metrics.aggregate.counter("recovery_recovered"), 1u);
  EXPECT_EQ(metrics.aggregate.counter("recovery_stalled"), 0u);
  EXPECT_EQ(metrics.aggregate.counter("deliveries"), 1u);
}

TEST(LifecycleTracker, HeadlineKeysPinnedAtZero) {
  // Even a run with no lazy traffic must export the headline keys, so
  // "recovery_stalled":0 is visible proof rather than an absent key.
  sim::Simulator sim;
  RunMetrics metrics;
  LifecycleTracker tracker(sim, 1, metrics);
  tracker.finalize();
  const std::string json = metrics.aggregate.to_json();
  EXPECT_NE(json.find("\"recovery_stalled\":0"), std::string::npos);
  EXPECT_NE(json.find("\"iwant_retries\":0"), std::string::npos);
  EXPECT_NE(json.find("\"recovery_episodes\":0"), std::string::npos);
}

TEST(GoodputTracker, RatesAndRedundancy) {
  GoodputTracker t(10 * kSecond);
  // One offer per second with an audience of 4, all delivered promptly.
  for (int i = 0; i < 5; ++i) {
    const SimTime at = 10 * kSecond + i * kSecond;
    t.on_offered(at, 4);
    for (int d = 0; d < 4; ++d) t.on_delivery(at + 100 * kMillisecond);
  }
  for (int p = 0; p < 30; ++p) t.on_payload();
  const GoodputReport r = t.finalize(15 * kSecond);
  EXPECT_EQ(r.offered_msgs, 5u);
  EXPECT_EQ(r.expected_deliveries, 20u);
  EXPECT_EQ(r.deliveries, 20u);
  EXPECT_EQ(r.payload_sends, 30u);
  EXPECT_DOUBLE_EQ(r.offered_msgs_per_s, 1.0);
  EXPECT_DOUBLE_EQ(r.goodput_msgs_per_s, 4.0);
  EXPECT_DOUBLE_EQ(r.redundancy_ratio, 1.5);
  EXPECT_LT(r.knee_time_ms, 0.0);  // never fell behind
}

TEST(GoodputTracker, IgnoresEventsBeforeMeasurementStart) {
  GoodputTracker t(5 * kSecond);
  t.on_offered(1 * kSecond, 10);
  t.on_delivery(2 * kSecond);
  const GoodputReport r = t.finalize(10 * kSecond);
  EXPECT_EQ(r.offered_msgs, 0u);
  EXPECT_EQ(r.deliveries, 0u);
  EXPECT_DOUBLE_EQ(r.offered_msgs_per_s, 0.0);
}

TEST(GoodputTracker, DetectsSustainedBacklogKnee) {
  GoodputTracker t(0);
  // Bucket 0 keeps up; from bucket 1 on nothing is ever delivered, so the
  // cumulative backlog exceeds a full bucket's volume from bucket 2 and
  // stays there — the knee run completes at bucket 4 and points back at
  // its start (bucket 2 => 2000 ms).
  t.on_offered(0, 100);
  for (int d = 0; d < 100; ++d) t.on_delivery(100 * kMillisecond);
  for (int b = 1; b <= 4; ++b) t.on_offered(b * kSecond, 100);
  const GoodputReport r = t.finalize(5 * kSecond);
  EXPECT_DOUBLE_EQ(r.knee_time_ms, 2000.0);
}

TEST(GoodputTracker, CatchUpResetsTheKneeRun) {
  GoodputTracker t(0);
  t.on_offered(0, 100);
  t.on_offered(1 * kSecond, 100);
  // Bucket 2 catches up completely, so the behind-run restarts; the later
  // backlog never sustains kKneeRun buckets.
  for (int d = 0; d < 200; ++d) t.on_delivery(2 * kSecond);
  t.on_offered(3 * kSecond, 100);
  t.on_offered(4 * kSecond, 100);
  t.on_offered(5 * kSecond, 100);
  const GoodputReport r = t.finalize(6 * kSecond);
  EXPECT_LT(r.knee_time_ms, 0.0);
}

TEST(GoodputTracker, FloorIgnoresSingleDigitStragglers) {
  GoodputTracker t(0);
  // A handful of undelivered messages (audience 2/bucket) never exceeds
  // the kKneeFloor backlog, so tiny runs do not register a knee.
  for (int b = 0; b < 4; ++b) t.on_offered(b * kSecond, 2);
  const GoodputReport r = t.finalize(4 * kSecond);
  EXPECT_LT(r.knee_time_ms, 0.0);
}

TEST(GoodputTracker, BurstThenIdleDoesNotLatchSaturation) {
  // Regression for the knee latch: a burst loses 100 deliveries to purged
  // payloads, then the system goes fully idle (the queue has drained —
  // those deliveries will never arrive) and later keeps up perfectly. The
  // carried backlog used to latch every subsequent bucket as "behind";
  // the idle bucket must write it off instead.
  GoodputTracker t(0);
  t.on_offered(0, 300);
  for (int d = 0; d < 200; ++d) t.on_delivery(100 * kMillisecond);
  // Buckets 1-2: fully idle. Buckets 3-6: offered and delivered in step.
  for (int b = 3; b <= 6; ++b) {
    t.on_offered(b * kSecond, 50);
    for (int d = 0; d < 50; ++d) t.on_delivery(b * kSecond + 1);
  }
  const GoodputReport r = t.finalize(7 * kSecond);
  EXPECT_LT(r.knee_time_ms, 0.0);
}

TEST(GoodputTracker, GenuineSaturationAfterIdleGapStillDetected) {
  // The write-off only covers backlog that existed when the queue
  // drained: offers after the idle gap that go undelivered accumulate
  // fresh backlog and must still trip the knee.
  GoodputTracker t(0);
  t.on_offered(0, 300);
  for (int d = 0; d < 200; ++d) t.on_delivery(100 * kMillisecond);
  // Idle buckets 1-2 write off the 100 purged deliveries; buckets 3-6
  // offer 100 each and deliver nothing.
  for (int b = 3; b <= 6; ++b) t.on_offered(b * kSecond, 100);
  const GoodputReport r = t.finalize(7 * kSecond);
  // Fresh backlog passes the per-bucket threshold from bucket 4; the run
  // of 3 completes at bucket 6 and points back at 4000 ms.
  EXPECT_DOUBLE_EQ(r.knee_time_ms, 4000.0);
}

TEST(GoodputTracker, WatermarkResidencyAccumulatesNodeTime) {
  GoodputTracker t(0);
  // Node A congested [1s, 4s), node B congested [2s, 3s): 3000 + 1000
  // node-ms, two rising edges.
  t.on_watermark(1 * kSecond, true);
  t.on_watermark(2 * kSecond, true);
  t.on_watermark(3 * kSecond, false);
  t.on_watermark(4 * kSecond, false);
  const GoodputReport r = t.finalize(10 * kSecond);
  EXPECT_EQ(r.watermark_episodes, 2u);
  EXPECT_DOUBLE_EQ(r.watermark_residency_ms, 4000.0);
}

TEST(GoodputTracker, WatermarkResidencyClampsToWindowAndClosesTail) {
  GoodputTracker t(5 * kSecond);
  // Congested since warmup (before the window): counts as congested from
  // the window start, and the still-open episode is closed at finalize.
  t.on_watermark(1 * kSecond, true);
  const GoodputReport r = t.finalize(8 * kSecond);
  EXPECT_EQ(r.watermark_episodes, 0u);  // the rising edge predates start
  EXPECT_DOUBLE_EQ(r.watermark_residency_ms, 3000.0);
}

TEST(GoodputTracker, MergeMatchesSingleTrackerOnPartitionedEvents) {
  // Sharded-run shape: the same event stream split across two trackers
  // by node ownership must merge into exactly what one tracker fed the
  // union would report — including the knee, which only exists in the
  // combined per-second buckets.
  GoodputTracker whole(0), a(0), b(0);
  for (int bkt = 0; bkt <= 4; ++bkt) {
    const SimTime at = bkt * kSecond;
    whole.on_offered(at, 100);
    (bkt % 2 == 0 ? a : b).on_offered(at, 100);
    const int delivered = bkt == 0 ? 100 : 0;  // then it falls behind
    for (int d = 0; d < delivered; ++d) {
      whole.on_delivery(at + 1);
      (d % 2 == 0 ? a : b).on_delivery(at + 1);
    }
  }
  for (int p = 0; p < 40; ++p) {
    whole.on_payload();
    a.on_payload();
  }
  a.merge(b);
  const GoodputReport merged = a.finalize(5 * kSecond);
  const GoodputReport reference = whole.finalize(5 * kSecond);
  EXPECT_EQ(merged.offered_msgs, reference.offered_msgs);
  EXPECT_EQ(merged.expected_deliveries, reference.expected_deliveries);
  EXPECT_EQ(merged.deliveries, reference.deliveries);
  EXPECT_EQ(merged.payload_sends, reference.payload_sends);
  EXPECT_DOUBLE_EQ(merged.goodput_msgs_per_s, reference.goodput_msgs_per_s);
  EXPECT_DOUBLE_EQ(merged.redundancy_ratio, reference.redundancy_ratio);
  EXPECT_DOUBLE_EQ(merged.knee_time_ms, reference.knee_time_ms);
  EXPECT_DOUBLE_EQ(reference.knee_time_ms, 2000.0);
}

TEST(GoodputTracker, MergeCombinesOpenWatermarkTailsExactly) {
  // Shard A's node congests at 1s and never drains; shard B's node is
  // congested [2s, 3s). A reference tracker observing both nodes reports
  // 9000 + 1000 node-ms at end = 10s; the merged pair must agree even
  // though the two open tails last changed at different times.
  GoodputTracker whole(0), a(0), b(0);
  whole.on_watermark(1 * kSecond, true);
  a.on_watermark(1 * kSecond, true);
  whole.on_watermark(2 * kSecond, true);
  b.on_watermark(2 * kSecond, true);
  whole.on_watermark(3 * kSecond, false);
  b.on_watermark(3 * kSecond, false);
  a.merge(b);
  const GoodputReport merged = a.finalize(10 * kSecond);
  const GoodputReport reference = whole.finalize(10 * kSecond);
  EXPECT_EQ(merged.watermark_episodes, reference.watermark_episodes);
  EXPECT_DOUBLE_EQ(merged.watermark_residency_ms,
                   reference.watermark_residency_ms);
  EXPECT_DOUBLE_EQ(reference.watermark_residency_ms, 10000.0);
}

TEST(RunMetrics, ArenaGaugesExported) {
  // Satellite pin: the message-arena high-water mark must appear as
  // arena.* gauges in every metrics collection, alongside the always-on
  // goodput accounting.
  harness::ExperimentConfig config;
  config.num_nodes = 25;
  config.num_messages = 12;
  config.warmup = 10 * kSecond;
  config.drain = 4 * kSecond;
  config.collect_metrics = true;
  config.topology.num_underlay_vertices = 400;
  config.topology.num_transit_domains = 3;
  config.topology.transit_per_domain = 6;
  const harness::ExperimentResult r = harness::run_experiment(config);
  ASSERT_TRUE(r.metrics);
  const MetricsRegistry& agg = r.metrics->aggregate;
  // The arena never shrinks, so its final size is the high-water mark:
  // every multicast of the run, and a nonzero payload byte volume.
  EXPECT_DOUBLE_EQ(agg.gauge("arena.messages"), 12.0);
  EXPECT_GT(agg.gauge("arena.bytes"), 0.0);
  EXPECT_EQ(agg.counter("goodput.offered_msgs"), 12u);
  EXPECT_GT(agg.counter("goodput.deliveries"), 0u);
  EXPECT_GT(agg.gauge("goodput.redundancy_ratio"), 0.0);
}

TEST(FormatMetricsJson, SchemaAndPhaseMerge) {
  RunMetrics metrics;
  metrics.runs = 2;
  metrics.aggregate.add_counter("deliveries", 10);
  metrics.per_node.resize(1);
  metrics.per_node[0].add_counter("deliveries", 10);

  stats::PhaseReport p0;
  p0.label = "baseline";
  p0.start = 0;
  p0.end = 10 * kSecond;
  p0.messages = 4;
  p0.deliveries = 40;
  p0.payload_packets = 50;
  stats::PhaseReport p0b = p0;
  p0b.end = 12 * kSecond;
  p0b.messages = 6;
  p0b.deliveries = 60;
  p0b.payload_packets = 70;

  const std::string json =
      harness::format_metrics_json(metrics, {{p0}, {p0b}});
  EXPECT_NE(json.find("\"schema\":\"esm-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\":2"), std::string::npos);
  // Phase fields merge exactly: counts sum, end takes the max.
  EXPECT_NE(json.find("\"label\":\"baseline\""), std::string::npos);
  EXPECT_NE(json.find("\"end_ms\":12000"), std::string::npos);
  EXPECT_NE(json.find("\"messages\":10"), std::string::npos);
  EXPECT_NE(json.find("\"deliveries\":100"), std::string::npos);
  EXPECT_NE(json.find("\"payload_packets\":120"), std::string::npos);

  // Without any phases the key is omitted entirely.
  const std::string no_phases = harness::format_metrics_json(metrics, {});
  EXPECT_EQ(no_phases.find("\"phases\""), std::string::npos);
}

}  // namespace
}  // namespace esm::obs
