// Tests for the parallel experiment runner: bit-for-bit determinism at any
// job count, input-order results, serial-loop equivalence, progress
// callbacks and error propagation.
#include "harness/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "harness/cli.hpp"
#include "harness/scenario_text.hpp"

namespace esm::harness {
namespace {

ExperimentConfig tiny_config(std::uint64_t seed) {
  ExperimentConfig c;
  c.seed = seed;
  c.num_nodes = 25;
  c.num_messages = 25;
  c.warmup = 8 * kSecond;
  c.topology.num_underlay_vertices = 300;
  c.topology.num_transit_domains = 3;
  c.topology.transit_per_domain = 5;
  return c;
}

// The fields the sweep tools print; equality here is what "byte-identical
// CSV under --jobs N" needs.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.latency_ci95_ms, b.latency_ci95_ms);
  EXPECT_EQ(a.p50_latency_ms, b.p50_latency_ms);
  EXPECT_EQ(a.p95_latency_ms, b.p95_latency_ms);
  EXPECT_EQ(a.payload_per_delivery, b.payload_per_delivery);
  EXPECT_EQ(a.load_all.payload_per_msg, b.load_all.payload_per_msg);
  EXPECT_EQ(a.load_low.payload_per_msg, b.load_low.payload_per_msg);
  EXPECT_EQ(a.load_best.payload_per_msg, b.load_best.payload_per_msg);
  EXPECT_EQ(a.mean_delivery_fraction, b.mean_delivery_fraction);
  EXPECT_EQ(a.atomic_delivery_fraction, b.atomic_delivery_fraction);
  EXPECT_EQ(a.top5_connection_share, b.top5_connection_share);
  EXPECT_EQ(a.payload_packets, b.payload_packets);
  EXPECT_EQ(a.control_packets, b.control_packets);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.live_nodes, b.live_nodes);
}

std::vector<ExperimentConfig> mixed_configs() {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    ExperimentConfig c = tiny_config(seed);
    c.strategy = StrategySpec::make_flat(0.5);
    configs.push_back(c);
    c = tiny_config(seed);
    c.strategy = StrategySpec::make_ttl(2);
    configs.push_back(c);
  }
  return configs;
}

TEST(Runner, DefaultJobsIsPositive) { EXPECT_GE(default_jobs(), 1u); }

TEST(Runner, ParallelMatchesSerialLoopBitForBit) {
  const auto configs = mixed_configs();

  // Reference: the historical strictly-serial loop.
  std::vector<ExperimentResult> serial;
  serial.reserve(configs.size());
  for (const auto& c : configs) serial.push_back(run_experiment(c));

  const auto jobs1 = run_experiments(configs, 1);
  const auto jobs4 = run_experiments(configs, 4);
  ASSERT_EQ(jobs1.size(), configs.size());
  ASSERT_EQ(jobs4.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_identical(serial[i], jobs1[i]);
    expect_identical(serial[i], jobs4[i]);
  }
}

TEST(Runner, KvRenderingIdenticalAcrossJobCounts) {
  // Strongest form of the determinism claim: the *rendered text* of every
  // result matches, not just the raw doubles.
  const auto configs = mixed_configs();
  const auto jobs1 = run_experiments(configs, 1);
  const auto jobs4 = run_experiments(configs, 4);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(format_result_kv(jobs1[i]), format_result_kv(jobs4[i]));
  }
}

TEST(Runner, WorkloadRunsAreDeterministicAtAnyJobCount) {
  // k-publisher heavy-traffic runs schedule all arrivals up front from a
  // dedicated RNG split; results (including the goodput/egress lines the
  // kv renderer now emits) must be byte-identical at any --jobs.
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    ExperimentConfig c = tiny_config(seed);
    load::WorkloadSpec wl;
    wl.duration = 4 * kSecond;
    for (int p = 0; p < 3; ++p) {
      load::PublisherSpec pub;
      pub.arrival = load::ArrivalKind::poisson;
      pub.rate = 10.0;
      wl.publishers.push_back(pub);
    }
    c.workload = wl;
    configs.push_back(c);
  }
  const auto jobs1 = run_experiments(configs, 1);
  const auto jobs4 = run_experiments(configs, 4);
  ASSERT_EQ(jobs1.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_identical(jobs1[i], jobs4[i]);
    EXPECT_EQ(jobs1[i].offered_msgs, jobs4[i].offered_msgs);
    EXPECT_EQ(jobs1[i].goodput_msgs_per_s, jobs4[i].goodput_msgs_per_s);
    EXPECT_EQ(jobs1[i].redundancy_ratio, jobs4[i].redundancy_ratio);
    EXPECT_EQ(format_result_kv(jobs1[i]), format_result_kv(jobs4[i]));
    EXPECT_GT(jobs1[i].offered_msgs, 0u);
  }
}

TEST(Runner, ScenarioRunsAreDeterministicAtAnyJobCount) {
  // A scenario exercises every injector path (RNG-driven random crashes,
  // churn interval, bursts, phase windows); the rendered kv text — which
  // includes the per-phase metrics — must still be byte-identical across
  // job counts.
  const auto scenario = parse_scenario(std::string(
      "0s phase baseline\n"
      "3s phase trouble\n"
      "3s crash random 4\n"
      "4s loss rate=0.1 for=2s\n"
      "5s churn rate=1 for=3s\n"
      "9s phase recovered\n"
      "9s recover all\n"));
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    ExperimentConfig c = tiny_config(seed);
    c.scenario = scenario;
    configs.push_back(c);
  }
  const auto jobs1 = run_experiments(configs, 1);
  const auto jobs4 = run_experiments(configs, 4);
  ASSERT_EQ(jobs1.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_identical(jobs1[i], jobs4[i]);
    ASSERT_FALSE(jobs1[i].phase_reports.empty());
    EXPECT_EQ(jobs1[i].faults_injected, jobs4[i].faults_injected);
    EXPECT_EQ(format_result_kv(jobs1[i]), format_result_kv(jobs4[i]));
  }
}

TEST(Runner, MoreJobsThanConfigs) {
  std::vector<ExperimentConfig> configs{tiny_config(5)};
  const auto results = run_experiments(configs, 16);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].events_executed, 0u);
}

TEST(Runner, EmptyConfigListIsFine) {
  EXPECT_TRUE(run_experiments({}, 4).empty());
}

TEST(Runner, OnDoneSeesEveryIndexExactlyOnce) {
  const auto configs = mixed_configs();
  std::set<std::size_t> seen;
  const auto results = run_experiments(
      configs, 3, [&](std::size_t i, const ExperimentResult& r) {
        // Serialized by the runner's mutex; no extra locking needed.
        EXPECT_TRUE(seen.insert(i).second);
        EXPECT_GT(r.events_executed, 0u);
      });
  EXPECT_EQ(seen.size(), configs.size());
}

TEST(Runner, FirstErrorInInputOrderIsRethrown) {
  std::vector<ExperimentConfig> configs;
  for (int i = 0; i < 4; ++i) configs.push_back(tiny_config(7));
  // Zero nodes is rejected by the harness; make two runs fail.
  configs[1].num_nodes = 0;
  configs[3].num_nodes = 0;
  EXPECT_THROW(run_experiments(configs, 4), std::exception);
}

TEST(Runner, ExtractJobsFlagParsesAndErases) {
  std::string error;
  std::vector<std::string> args{"--nodes", "50", "--jobs", "3", "--csv"};
  EXPECT_EQ(extract_jobs_flag(args, error), 3u);
  EXPECT_EQ(args, (std::vector<std::string>{"--nodes", "50", "--csv"}));

  args = {"--jobs", "0"};
  EXPECT_EQ(extract_jobs_flag(args, error), default_jobs());
  EXPECT_TRUE(args.empty());

  args = {"--nodes", "50"};
  EXPECT_EQ(extract_jobs_flag(args, error), default_jobs());

  args = {"--jobs", "banana"};
  EXPECT_EQ(extract_jobs_flag(args, error), 0u);
  EXPECT_FALSE(error.empty());

  args = {"--jobs"};
  error.clear();
  EXPECT_EQ(extract_jobs_flag(args, error), 0u);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace esm::harness
