// Property-style invariants checked across a parameterized sweep of seeds
// and strategies. These encode what must hold for *any* transmission
// strategy (the paper's core safety claim: strategies affect only the
// latency/bandwidth tradeoff, never correctness).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/experiment.hpp"

namespace esm::harness {
namespace {

ExperimentConfig small_config(std::uint64_t seed) {
  ExperimentConfig c;
  c.seed = seed;
  c.num_nodes = 35;
  c.num_messages = 50;
  c.warmup = 12 * kSecond;
  c.topology.num_underlay_vertices = 500;
  c.topology.num_transit_domains = 3;
  c.topology.transit_per_domain = 6;
  return c;
}

StrategySpec spec_by_name(const std::string& name) {
  if (name == "eager") return StrategySpec::make_flat(1.0);
  if (name == "lazy") return StrategySpec::make_flat(0.0);
  if (name == "flat-half") return StrategySpec::make_flat(0.5);
  if (name == "ttl") return StrategySpec::make_ttl(2);
  if (name == "radius") return StrategySpec::make_radius(20.0);
  if (name == "ranked") return StrategySpec::make_ranked(0.2);
  if (name == "hybrid") return StrategySpec::make_hybrid(15.0, 3, 0.2);
  StrategySpec noisy = StrategySpec::make_ranked(0.2);
  noisy.noise = 0.5;
  return noisy;  // "ranked-noisy"
}

using Param = std::tuple<std::uint64_t, std::string>;

class StrategyInvariants : public ::testing::TestWithParam<Param> {};

TEST_P(StrategyInvariants, DeterministicGivenSeed) {
  const auto& [seed, name] = GetParam();
  ExperimentConfig c = small_config(seed);
  c.strategy = spec_by_name(name);
  c.num_messages = 25;  // determinism needs no statistics
  const ExperimentResult a = run_experiment(c);
  const ExperimentResult b = run_experiment(c);
  EXPECT_EQ(a.events_executed, b.events_executed) << name;
  EXPECT_EQ(a.payload_packets, b.payload_packets);
  EXPECT_EQ(a.control_packets, b.control_packets);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.payload_tx_per_message, b.payload_tx_per_message);
}

TEST_P(StrategyInvariants, SafetyHoldsForAnyStrategy) {
  const auto& [seed, name] = GetParam();
  ExperimentConfig c = small_config(seed);
  c.strategy = spec_by_name(name);
  const ExperimentResult r = run_experiment(c);

  // (1) No loss, no failures => every live node delivers every message.
  //     (run_experiment internally also asserts no duplicate deliveries.)
  EXPECT_DOUBLE_EQ(r.mean_delivery_fraction, 1.0)
      << name << " seed=" << seed;
  EXPECT_DOUBLE_EQ(r.atomic_delivery_fraction, 1.0);

  // (2) Payload economy is bounded by the pure-lazy and pure-eager
  //     extremes: at least ~1 payload per delivery (minus the origin's
  //     free copy), at most the fanout.
  EXPECT_GT(r.payload_per_delivery, 0.9);
  EXPECT_LT(r.payload_per_delivery, 11.5);
  EXPECT_LE(r.load_all.payload_per_msg, 11.5);

  // (3) Latency is physically plausible: above the minimum one-way link
  //     latency and below the retransmission-dominated ceiling.
  EXPECT_GT(r.p50_latency_ms, 1.0);
  EXPECT_LT(r.mean_latency_ms, 2000.0);
  EXPECT_LE(r.p50_latency_ms, r.p95_latency_ms);

  // (4) Structure measure is a valid share.
  EXPECT_GE(r.top5_connection_share, 0.0);
  EXPECT_LE(r.top5_connection_share, 1.0);

  // (5) Traffic accounting is consistent.
  EXPECT_GT(r.payload_packets, 0u);
  EXPECT_GT(r.total_bytes, 0u);
  EXPECT_EQ(r.packets_lost, 0u);
  EXPECT_EQ(r.live_nodes, 35u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStrategies, StrategyInvariants,
    ::testing::Combine(::testing::Values(1ULL, 2ULL, 3ULL),
                       ::testing::Values("eager", "lazy", "flat-half", "ttl",
                                         "radius", "ranked", "hybrid",
                                         "ranked-noisy")),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<1>(info.param) + "Seed" +
                         std::to_string(std::get<0>(info.param));
      std::erase_if(name, [](char c) { return !std::isalnum(c); });
      return name;
    });

// Correctness must also be independent of the membership substrate: the
// scheduler sees only PeerSample(f) (§3.1).
using OverlayParam = std::tuple<std::string, std::string>;

class OverlayIndependence : public ::testing::TestWithParam<OverlayParam> {};

TEST_P(OverlayIndependence, DeliveryHoldsOnEverySubstrate) {
  const auto& [overlay, strategy] = GetParam();
  ExperimentConfig c = small_config(23);
  c.strategy = spec_by_name(strategy);
  if (overlay == "cyclon") {
    c.overlay_kind = OverlayKind::cyclon;
  } else if (overlay == "static") {
    c.overlay_kind = OverlayKind::static_random;
  } else if (overlay == "hyparview") {
    c.overlay_kind = OverlayKind::hyparview;
    // HyParView active views are small: cover them fully.
    c.overlay.view_size = 8;
    c.gossip.fanout = 11;
    c.warmup = 20 * kSecond;  // staggered joins need time
  } else {
    c.overlay_kind = OverlayKind::oracle;
  }
  const ExperimentResult r = run_experiment(c);
  EXPECT_GT(r.mean_delivery_fraction, 0.999)
      << overlay << "/" << strategy;
  EXPECT_GT(r.payload_per_delivery, 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    Substrates, OverlayIndependence,
    ::testing::Combine(::testing::Values("cyclon", "static", "hyparview",
                                         "oracle"),
                       ::testing::Values("eager", "lazy", "ttl")),
    [](const ::testing::TestParamInfo<OverlayParam>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

class LossResilience : public ::testing::TestWithParam<double> {};

TEST_P(LossResilience, LazyGossipRecoversFromOmissions) {
  ExperimentConfig c = small_config(7);
  c.strategy = StrategySpec::make_flat(0.0);
  c.loss_rate = GetParam();
  const ExperimentResult r = run_experiment(c);
  // The paper (§2.1): lazy push widens the vulnerability window but "the
  // impact is small for realistic omission rates".
  EXPECT_GT(r.mean_delivery_fraction, 0.97) << "loss=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(OmissionRates, LossResilience,
                         ::testing::Values(0.005, 0.01, 0.02, 0.05));

class FailureResilience : public ::testing::TestWithParam<double> {};

TEST_P(FailureResilience, EagerGossipToleratesDeadNodes) {
  ExperimentConfig c = small_config(11);
  c.strategy = StrategySpec::make_flat(1.0);
  c.kill_fraction = GetParam();
  c.kill_mode = KillMode::random;
  const ExperimentResult r = run_experiment(c);
  // Below the epidemic threshold the protocol keeps delivering to the
  // overwhelming majority of live nodes (Fig. 5(b) plateau).
  EXPECT_GT(r.mean_delivery_fraction, 0.90) << "kill=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(KillFractions, FailureResilience,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5));

class NoiseLevels : public ::testing::TestWithParam<double> {};

TEST_P(NoiseLevels, NoisePreservesTrafficVolume) {
  ExperimentConfig c = small_config(13);
  c.strategy = StrategySpec::make_ranked(0.2);
  const double clean_load = run_experiment(c).load_all.payload_per_msg;
  c.strategy.noise = GetParam();
  const ExperimentResult noisy = run_experiment(c);
  // §4.3: "the same amount of eager transmissions although scheduled in
  // different occasions" — and reliability must be untouched.
  EXPECT_NEAR(noisy.load_all.payload_per_msg, clean_load, 0.30 * clean_load)
      << "noise=" << GetParam();
  EXPECT_DOUBLE_EQ(noisy.mean_delivery_fraction, 1.0);
}

INSTANTIATE_TEST_SUITE_P(NoiseSweep, NoiseLevels,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

class FanoutSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FanoutSweep, EagerPayloadEqualsFanout) {
  ExperimentConfig c = small_config(17);
  c.strategy = StrategySpec::make_flat(1.0);
  c.gossip.fanout = GetParam();
  c.num_messages = 30;
  const ExperimentResult r = run_experiment(c);
  // Each delivering node relays the payload exactly `fanout` times.
  EXPECT_NEAR(r.load_all.payload_per_msg, static_cast<double>(GetParam()),
              0.2);
  // Atomicity holds with high probability, not certainty (§1): allow the
  // occasional message that misses a node at small fanouts.
  EXPECT_GT(r.mean_delivery_fraction, 0.995);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, FanoutSweep,
                         ::testing::Values(6u, 8u, 11u, 14u));

}  // namespace
}  // namespace esm::harness
