#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>
#include <algorithm>

#include "common/rng.hpp"

namespace esm::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, ExecutesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime observed = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, 150);
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), CheckFailure);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), CheckFailure);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.pending(h));
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.pending(h));
  EXPECT_FALSE(sim.cancel(h));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelOneOfMany) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] { order.push_back(1); });
  const EventHandle h = sim.schedule_at(20, [&] { order.push_back(2); });
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (SimTime t = 10; t <= 100; t += 10) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(45);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(sim.now(), 45);
  sim.run_until(100);
  EXPECT_EQ(fired.size(), 10u);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilIncludesBoundary) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(50, [&] { fired = true; });
  sim.run_until(50);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilAdvancesEvenWithEmptyQueue) {
  Simulator sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
  EXPECT_THROW(sim.run_until(500), CheckFailure);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  const EventHandle h = sim.schedule_at(9, [] {});
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(Simulator, RandomizedModelCheck) {
  // Property test against a reference model: a random interleaving of
  // schedule/cancel operations must fire exactly the non-cancelled events,
  // in (time, insertion) order.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    Simulator sim;
    struct Expected {
      SimTime time;
      std::uint64_t seq;
      int tag;
    };
    std::vector<Expected> model;
    std::vector<int> fired;
    std::vector<EventHandle> handles;
    std::vector<std::size_t> model_index;
    std::uint64_t seq = 0;

    for (int op = 0; op < 300; ++op) {
      if (!handles.empty() && rng.chance(0.25)) {
        // Cancel a random still-tracked event.
        const std::size_t pick = rng.below(handles.size());
        if (sim.cancel(handles[pick])) {
          model[model_index[pick]].tag = -1;  // tombstone
        }
        handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(pick));
        model_index.erase(model_index.begin() +
                          static_cast<std::ptrdiff_t>(pick));
        continue;
      }
      const SimTime t = rng.range(0, 1000);
      const int tag = op;
      handles.push_back(sim.schedule_at(t, [&fired, tag] {
        fired.push_back(tag);
      }));
      model_index.push_back(model.size());
      model.push_back(Expected{t, seq++, tag});
    }
    sim.run();

    std::vector<Expected> alive;
    for (const Expected& e : model) {
      if (e.tag >= 0) alive.push_back(e);
    }
    std::sort(alive.begin(), alive.end(), [](const auto& a, const auto& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    });
    ASSERT_EQ(fired.size(), alive.size()) << "seed " << seed;
    for (std::size_t i = 0; i < alive.size(); ++i) {
      EXPECT_EQ(fired[i], alive[i].tag) << "seed " << seed << " pos " << i;
    }
  }
}

TEST(PeriodicTimer, FiresAtFixedIntervals) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTimer timer(sim, [&] { ticks.push_back(sim.now()); });
  timer.start(5, 10);
  sim.run_until(45);
  EXPECT_EQ(ticks, (std::vector<SimTime>{5, 15, 25, 35, 45}));
}

TEST(PeriodicTimer, StopHaltsTicks) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, [&] { ++count; });
  timer.start(0, 10);
  sim.run_until(25);
  timer.stop();
  EXPECT_FALSE(timer.running());
  sim.run_until(100);
  EXPECT_EQ(count, 3);  // t = 0, 10, 20
}

TEST(PeriodicTimer, TickMayStopItself) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, [&] {
    if (++count == 2) timer.stop();
  });
  timer.start(0, 10);
  sim.run_until(200);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTimer, RestartResetsSchedule) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTimer timer(sim, [&] { ticks.push_back(sim.now()); });
  timer.start(100, 100);
  sim.run_until(50);
  timer.start(25, 100);  // re-start before first tick
  sim.run_until(200);
  EXPECT_EQ(ticks, (std::vector<SimTime>{75, 175}));
}

TEST(PeriodicTimer, DestructorCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTimer timer(sim, [&] { ++count; });
    timer.start(10, 10);
  }
  sim.run_until(100);
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace esm::sim
