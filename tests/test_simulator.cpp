#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "common/rng.hpp"

namespace esm::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, ExecutesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, KeyedEventsOrderByKeyAtEqualTimestamps) {
  // At a shared timestamp, ascending key wins regardless of scheduling
  // order; FIFO only breaks ties within a key.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at_keyed(5, 30, [&] { order.push_back(30); });
  sim.schedule_at_keyed(5, 10, [&] { order.push_back(10); });
  sim.schedule_at_keyed(5, 20, [&] { order.push_back(20); });
  sim.schedule_at_keyed(5, 10, [&] { order.push_back(11); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 30}));
}

TEST(Simulator, UnkeyedEventsFireBeforeKeyedAtEqualTimestamps) {
  // schedule_at() is the key-0 case, so plain events (timers) precede any
  // keyed event (deliveries) sharing their timestamp — even when the
  // keyed event was scheduled first.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at_keyed(7, 1, [&] { order.push_back(2); });
  sim.schedule_at(7, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, KeysDoNotReorderAcrossTimestamps) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at_keyed(10, 1, [&] { order.push_back(1); });
  sim.schedule_at_keyed(20, 99, [&] { order.push_back(2); });
  sim.schedule_at_keyed(30, 1, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunStrictlyUntilExcludesBoundary) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule_at(40, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(50, [&] { fired.push_back(sim.now()); });
  sim.run_strictly_until(50);
  EXPECT_EQ(fired, (std::vector<SimTime>{40}));
  EXPECT_EQ(sim.now(), 50);
  // The boundary event is still pending and fires on the next window.
  sim.run_strictly_until(51);
  EXPECT_EQ(fired, (std::vector<SimTime>{40, 50}));
  EXPECT_EQ(sim.now(), 51);
}

TEST(Simulator, RunStrictlyUntilAdvancesEmptyQueue) {
  Simulator sim;
  sim.run_strictly_until(1000);
  EXPECT_EQ(sim.now(), 1000);
  EXPECT_THROW(sim.run_strictly_until(999), CheckFailure);
  // Scheduling AT the advanced clock still works (>= now).
  bool fired = false;
  sim.schedule_at(1000, [&] { fired = true; });
  sim.run_strictly_until(1001);
  EXPECT_TRUE(fired);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime observed = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, 150);
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), CheckFailure);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), CheckFailure);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.pending(h));
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.pending(h));
  EXPECT_FALSE(sim.cancel(h));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelOneOfMany) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] { order.push_back(1); });
  const EventHandle h = sim.schedule_at(20, [&] { order.push_back(2); });
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (SimTime t = 10; t <= 100; t += 10) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(45);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(sim.now(), 45);
  sim.run_until(100);
  EXPECT_EQ(fired.size(), 10u);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilIncludesBoundary) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(50, [&] { fired = true; });
  sim.run_until(50);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilAdvancesEvenWithEmptyQueue) {
  Simulator sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
  EXPECT_THROW(sim.run_until(500), CheckFailure);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  const EventHandle h = sim.schedule_at(9, [] {});
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(Simulator, StaleHandleDoesNotCancelSlotReuse) {
  // A cancelled event's slot may be reused by a later schedule; the stale
  // handle must be inert (generation check) and must never cancel the new
  // occupant.
  Simulator sim;
  bool first_fired = false;
  bool second_fired = false;
  const EventHandle stale = sim.schedule_at(10, [&] { first_fired = true; });
  EXPECT_TRUE(sim.cancel(stale));
  // With a single free slot, the next schedule reuses it.
  const EventHandle fresh = sim.schedule_at(20, [&] { second_fired = true; });
  EXPECT_FALSE(sim.pending(stale));
  EXPECT_TRUE(sim.pending(fresh));
  EXPECT_FALSE(sim.cancel(stale));  // must not touch the reused slot
  EXPECT_TRUE(sim.pending(fresh));
  sim.run();
  EXPECT_FALSE(first_fired);
  EXPECT_TRUE(second_fired);
}

TEST(Simulator, StaleHandleAfterFireDoesNotCancelSlotReuse) {
  // Same as above but the slot is vacated by firing, not cancelling.
  Simulator sim;
  const EventHandle fired_handle = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_FALSE(sim.pending(fired_handle));
  bool second_fired = false;
  const EventHandle fresh =
      sim.schedule_at(20, [&] { second_fired = true; });
  EXPECT_FALSE(sim.cancel(fired_handle));
  EXPECT_TRUE(sim.pending(fresh));
  sim.run();
  EXPECT_TRUE(second_fired);
}

TEST(Simulator, PendingStaysFalseOnFiredAndCancelledHandles) {
  Simulator sim;
  const EventHandle cancelled = sim.schedule_at(5, [] {});
  const EventHandle fires = sim.schedule_at(6, [] {});
  sim.cancel(cancelled);
  sim.run();
  EXPECT_FALSE(sim.pending(cancelled));
  EXPECT_FALSE(sim.pending(fires));
  // Heavy slot churn: old handles stay dead no matter how often their
  // slots are recycled.
  for (int i = 0; i < 100; ++i) {
    const EventHandle h = sim.schedule_after(1, [] {});
    sim.run();
    EXPECT_FALSE(sim.pending(h));
    EXPECT_FALSE(sim.pending(cancelled));
    EXPECT_FALSE(sim.pending(fires));
  }
  EXPECT_FALSE(sim.cancel(cancelled));
  EXPECT_FALSE(sim.cancel(fires));
}

TEST(Simulator, DefaultHandleIsInert) {
  Simulator sim;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(sim.pending(h));
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, CancelInsideCallbackOfSameTimestamp) {
  // An event may cancel a later event sharing its timestamp; the heap
  // entry for the cancelled event must be skipped, not fired.
  Simulator sim;
  bool victim_fired = false;
  EventHandle victim;
  sim.schedule_at(10, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  victim = sim.schedule_at(10, [&] { victim_fired = true; });
  sim.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, LargeCaptureCallbacksSurviveSlotReuse) {
  // Callbacks bigger than the inline buffer take the heap fallback path;
  // they must move intact through slab slots and slot reuse.
  Simulator sim;
  std::array<long, 64> payload{};
  for (int i = 0; i < 64; ++i) payload[static_cast<size_t>(i)] = i;
  static_assert(sizeof(payload) > EventCallback::kInlineBytes);
  long sum = 0;
  const EventHandle h = sim.schedule_at(5, [payload, &sum] {
    for (const long v : payload) sum += v;
  });
  EXPECT_TRUE(sim.pending(h));
  sim.run();
  EXPECT_EQ(sum, 64L * 63L / 2L);
}

TEST(Simulator, RandomizedModelCheck) {
  // Property test against a reference model: a random interleaving of
  // schedule/cancel operations must fire exactly the non-cancelled events,
  // in (time, insertion) order.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    Simulator sim;
    struct Expected {
      SimTime time;
      std::uint64_t seq;
      int tag;
    };
    std::vector<Expected> model;
    std::vector<int> fired;
    std::vector<EventHandle> handles;
    std::vector<std::size_t> model_index;
    std::uint64_t seq = 0;

    for (int op = 0; op < 300; ++op) {
      if (!handles.empty() && rng.chance(0.25)) {
        // Cancel a random still-tracked event.
        const std::size_t pick = rng.below(handles.size());
        if (sim.cancel(handles[pick])) {
          model[model_index[pick]].tag = -1;  // tombstone
        }
        handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(pick));
        model_index.erase(model_index.begin() +
                          static_cast<std::ptrdiff_t>(pick));
        continue;
      }
      const SimTime t = rng.range(0, 1000);
      const int tag = op;
      handles.push_back(sim.schedule_at(t, [&fired, tag] {
        fired.push_back(tag);
      }));
      model_index.push_back(model.size());
      model.push_back(Expected{t, seq++, tag});
    }
    sim.run();

    std::vector<Expected> alive;
    for (const Expected& e : model) {
      if (e.tag >= 0) alive.push_back(e);
    }
    std::sort(alive.begin(), alive.end(), [](const auto& a, const auto& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    });
    ASSERT_EQ(fired.size(), alive.size()) << "seed " << seed;
    for (std::size_t i = 0; i < alive.size(); ++i) {
      EXPECT_EQ(fired[i], alive[i].tag) << "seed " << seed << " pos " << i;
    }
  }
}

TEST(PeriodicTimer, FiresAtFixedIntervals) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTimer timer(sim, [&] { ticks.push_back(sim.now()); });
  timer.start(5, 10);
  sim.run_until(45);
  EXPECT_EQ(ticks, (std::vector<SimTime>{5, 15, 25, 35, 45}));
}

TEST(PeriodicTimer, StopHaltsTicks) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, [&] { ++count; });
  timer.start(0, 10);
  sim.run_until(25);
  timer.stop();
  EXPECT_FALSE(timer.running());
  sim.run_until(100);
  EXPECT_EQ(count, 3);  // t = 0, 10, 20
}

TEST(PeriodicTimer, TickMayStopItself) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, [&] {
    if (++count == 2) timer.stop();
  });
  timer.start(0, 10);
  sim.run_until(200);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTimer, RestartResetsSchedule) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTimer timer(sim, [&] { ticks.push_back(sim.now()); });
  timer.start(100, 100);
  sim.run_until(50);
  timer.start(25, 100);  // re-start before first tick
  sim.run_until(200);
  EXPECT_EQ(ticks, (std::vector<SimTime>{75, 175}));
}

TEST(PeriodicTimer, DestructorCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTimer timer(sim, [&] { ++count; });
    timer.start(10, 10);
  }
  sim.run_until(100);
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace esm::sim
