// Golden regression tests: exact metric values for pinned seeds.
//
// Everything in this library is deterministic given (config, seed), so any
// behavioral change — an extra RNG draw, a reordered event, a protocol
// tweak — shifts these numbers. That is the point: they catch silent
// semantic drift that the invariant-based tests would absorb. When a
// change is *intentional*, re-run with --gtest_also_run_disabled_tests
// or just update the constants below (the failure message prints the new
// values).
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace esm::harness {
namespace {

ExperimentConfig golden_config() {
  ExperimentConfig c;
  c.seed = 777;
  c.num_nodes = 50;
  c.num_messages = 100;
  c.warmup = 15 * kSecond;
  c.topology.num_underlay_vertices = 800;
  c.topology.num_transit_domains = 3;
  c.topology.transit_per_domain = 6;
  return c;
}

TEST(Golden, EagerPush) {
  ExperimentConfig c = golden_config();
  c.strategy = StrategySpec::make_flat(1.0);
  const ExperimentResult r = run_experiment(c);
  EXPECT_EQ(r.payload_packets, 55000u);  // 100 msgs x 50 nodes x fanout 11
  EXPECT_EQ(r.duplicate_payloads, 50100u);
  EXPECT_DOUBLE_EQ(r.mean_delivery_fraction, 1.0);
  EXPECT_NEAR(r.mean_latency_ms, 70.54, 0.05);
}

TEST(Golden, LazyPush) {
  ExperimentConfig c = golden_config();
  c.strategy = StrategySpec::make_flat(0.0);
  const ExperimentResult r = run_experiment(c);
  EXPECT_EQ(r.payload_packets, 4900u);  // exactly one per non-origin node
  EXPECT_EQ(r.duplicate_payloads, 0u);
  EXPECT_NEAR(r.mean_latency_ms, 219.99, 0.05);
}

TEST(Golden, TtlStrategy) {
  ExperimentConfig c = golden_config();
  c.strategy = StrategySpec::make_ttl(3);
  const ExperimentResult r = run_experiment(c);
  EXPECT_DOUBLE_EQ(r.mean_delivery_fraction, 1.0);
  EXPECT_NEAR(r.mean_latency_ms, 78.42, 0.05);
  EXPECT_NEAR(r.payload_per_delivery, 2.832, 0.005);
}

TEST(Golden, TopologyScale) {
  net::TopologyParams params;
  params.num_clients = 100;
  const net::Topology topo = net::generate_topology(params, 2007);
  // The calibrated latency scale and edge count are pure functions of the
  // seed; drift means the generator's RNG consumption changed.
  EXPECT_EQ(topo.graph.num_edges(), 3644u);
  EXPECT_NEAR(topo.latency_scale, 61852.14, 0.1);
}

}  // namespace
}  // namespace esm::harness
