#include "trace/trace_log.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.hpp"

namespace esm::trace {
namespace {

TEST(TraceLog, RecordsAndQueries) {
  TraceLog log;
  log.record_delivery({1000, 3, 0, 7, 950});
  log.record_delivery({1100, 4, 0, 7, 1050});
  log.record_payload({900, 0, 3, 7, true});
  EXPECT_EQ(log.deliveries().size(), 2u);
  EXPECT_EQ(log.payloads().size(), 1u);
  EXPECT_EQ(log.deliveries_for(7), 2u);
  EXPECT_EQ(log.payloads_for(7), 1u);
  EXPECT_EQ(log.deliveries_for(8), 0u);
}

TEST(TraceLog, CsvRoundTrip) {
  TraceLog log;
  log.record_delivery({1000, 3, 2, 7, 950});
  log.record_payload({900, 0, 3, 7, true});
  log.record_payload({1200, 3, 5, 7, false});

  std::ostringstream out;
  log.write_csv(out);
  std::istringstream in(out.str());
  const TraceLog parsed = TraceLog::read_csv(in);

  ASSERT_EQ(parsed.deliveries().size(), 1u);
  EXPECT_EQ(parsed.deliveries()[0].time, 1000);
  EXPECT_EQ(parsed.deliveries()[0].node, 3u);
  EXPECT_EQ(parsed.deliveries()[0].origin, 2u);
  EXPECT_EQ(parsed.deliveries()[0].seq, 7u);
  EXPECT_EQ(parsed.deliveries()[0].latency, 950);
  ASSERT_EQ(parsed.payloads().size(), 2u);
  EXPECT_TRUE(parsed.payloads()[0].eager);
  EXPECT_FALSE(parsed.payloads()[1].eager);
  EXPECT_EQ(parsed.payloads()[1].dst, 5u);
}

TEST(TraceLog, PhaseRowsRoundTrip) {
  TraceLog log;
  log.record_phase({0, "baseline"});
  log.record_payload({900, 0, 3, 7, true});
  log.record_phase({60 * kSecond, "kill"});
  log.record_delivery({1000, 3, 2, 7, 950});

  std::ostringstream out;
  log.write_csv(out);
  std::istringstream in(out.str());
  const TraceLog parsed = TraceLog::read_csv(in);

  ASSERT_EQ(parsed.phases().size(), 2u);
  EXPECT_EQ(parsed.phases()[0].time, 0);
  EXPECT_EQ(parsed.phases()[0].label, "baseline");
  EXPECT_EQ(parsed.phases()[1].time, 60 * kSecond);
  EXPECT_EQ(parsed.phases()[1].label, "kill");
  EXPECT_EQ(parsed.deliveries().size(), 1u);
  EXPECT_EQ(parsed.payloads().size(), 1u);
}

TEST(TraceLog, RejectsPhaseRowWithoutLabel) {
  std::istringstream in(
      "kind,time_us,node,peer,seq,latency_us,eager\nphase,1000,,,,,\n");
  EXPECT_THROW(TraceLog::read_csv(in), std::runtime_error);
}

TEST(TraceLog, RejectsMalformedCsv) {
  {
    std::istringstream in("");
    EXPECT_THROW(TraceLog::read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("not,a,header\n");
    EXPECT_THROW(TraceLog::read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("kind,time_us,node,peer,seq,latency_us,eager\nbogus,1,2,3,4,5,6\n");
    EXPECT_THROW(TraceLog::read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("kind,time_us,node,peer,seq,latency_us,eager\ndelivery,1,2\n");
    EXPECT_THROW(TraceLog::read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "kind,time_us,node,peer,seq,latency_us,eager\ndelivery,xx,2,3,4,5,\n");
    EXPECT_THROW(TraceLog::read_csv(in), std::runtime_error);
  }
}

TEST(TraceLog, HarnessTraceMatchesAggregates) {
  harness::ExperimentConfig c;
  c.seed = 21;
  c.num_nodes = 30;
  c.num_messages = 40;
  c.warmup = 10 * kSecond;
  c.topology.num_underlay_vertices = 400;
  c.topology.num_transit_domains = 3;
  c.topology.transit_per_domain = 6;
  c.strategy = harness::StrategySpec::make_ttl(2);
  c.collect_trace = true;
  const harness::ExperimentResult r = harness::run_experiment(c);
  ASSERT_NE(r.trace, nullptr);

  // The trace's payload events equal the transport's payload packets, and
  // deliveries equal num_messages x num_nodes (no loss, no failures).
  EXPECT_EQ(r.trace->payloads().size(), r.payload_packets);
  EXPECT_EQ(r.trace->deliveries().size(),
            static_cast<std::size_t>(c.num_messages) * c.num_nodes);
  // Per-message payload counts match the harness accounting.
  for (std::uint32_t seq = 0; seq < c.num_messages; ++seq) {
    EXPECT_EQ(r.trace->payloads_for(seq), r.payload_tx_per_message[seq]);
  }
  // Latency recorded per delivery is non-negative and zero at origins.
  std::size_t origin_deliveries = 0;
  for (const DeliveryEvent& e : r.trace->deliveries()) {
    EXPECT_GE(e.latency, 0);
    if (e.node == e.origin) {
      EXPECT_EQ(e.latency, 0);
      ++origin_deliveries;
    }
  }
  EXPECT_EQ(origin_deliveries, c.num_messages);
}

TEST(TraceLog, DisabledByDefault) {
  harness::ExperimentConfig c;
  c.seed = 21;
  c.num_nodes = 20;
  c.num_messages = 10;
  c.warmup = 8 * kSecond;
  c.topology.num_underlay_vertices = 400;
  c.topology.num_transit_domains = 3;
  c.topology.transit_per_domain = 6;
  const harness::ExperimentResult r = harness::run_experiment(c);
  EXPECT_EQ(r.trace, nullptr);
}

}  // namespace
}  // namespace esm::trace
