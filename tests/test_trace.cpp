#include "trace/trace_log.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "harness/experiment.hpp"

namespace esm::trace {
namespace {

TEST(TraceLog, RecordsAndQueries) {
  TraceLog log;
  log.record_delivery({1000, 3, 0, 7, 950});
  log.record_delivery({1100, 4, 0, 7, 1050});
  log.record_payload({900, 0, 3, 7, true});
  EXPECT_EQ(log.deliveries().size(), 2u);
  EXPECT_EQ(log.payloads().size(), 1u);
  EXPECT_EQ(log.deliveries_for(7), 2u);
  EXPECT_EQ(log.payloads_for(7), 1u);
  EXPECT_EQ(log.deliveries_for(8), 0u);
}

TEST(TraceLog, CsvRoundTrip) {
  TraceLog log;
  log.record_delivery({1000, 3, 2, 7, 950});
  log.record_payload({900, 0, 3, 7, true});
  log.record_payload({1200, 3, 5, 7, false});

  std::ostringstream out;
  log.write_csv(out);
  std::istringstream in(out.str());
  const TraceLog parsed = TraceLog::read_csv(in);

  ASSERT_EQ(parsed.deliveries().size(), 1u);
  EXPECT_EQ(parsed.deliveries()[0].time, 1000);
  EXPECT_EQ(parsed.deliveries()[0].node, 3u);
  EXPECT_EQ(parsed.deliveries()[0].origin, 2u);
  EXPECT_EQ(parsed.deliveries()[0].seq, 7u);
  EXPECT_EQ(parsed.deliveries()[0].latency, 950);
  ASSERT_EQ(parsed.payloads().size(), 2u);
  EXPECT_TRUE(parsed.payloads()[0].eager);
  EXPECT_FALSE(parsed.payloads()[1].eager);
  EXPECT_EQ(parsed.payloads()[1].dst, 5u);
}

TEST(TraceLog, PhaseRowsRoundTrip) {
  TraceLog log;
  log.record_phase({0, "baseline"});
  log.record_payload({900, 0, 3, 7, true});
  log.record_phase({60 * kSecond, "kill"});
  log.record_delivery({1000, 3, 2, 7, 950});

  std::ostringstream out;
  log.write_csv(out);
  std::istringstream in(out.str());
  const TraceLog parsed = TraceLog::read_csv(in);

  ASSERT_EQ(parsed.phases().size(), 2u);
  EXPECT_EQ(parsed.phases()[0].time, 0);
  EXPECT_EQ(parsed.phases()[0].label, "baseline");
  EXPECT_EQ(parsed.phases()[1].time, 60 * kSecond);
  EXPECT_EQ(parsed.phases()[1].label, "kill");
  EXPECT_EQ(parsed.deliveries().size(), 1u);
  EXPECT_EQ(parsed.payloads().size(), 1u);
}

TEST(TraceLog, RejectsPhaseRowWithoutLabel) {
  std::istringstream in(
      "kind,time_us,node,peer,seq,latency_us,eager\nphase,1000,,,,,\n");
  EXPECT_THROW(TraceLog::read_csv(in), std::runtime_error);
}

TEST(TraceLog, RejectsMalformedCsv) {
  {
    std::istringstream in("");
    EXPECT_THROW(TraceLog::read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("not,a,header\n");
    EXPECT_THROW(TraceLog::read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("kind,time_us,node,peer,seq,latency_us,eager\nbogus,1,2,3,4,5,6\n");
    EXPECT_THROW(TraceLog::read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("kind,time_us,node,peer,seq,latency_us,eager\ndelivery,1,2\n");
    EXPECT_THROW(TraceLog::read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "kind,time_us,node,peer,seq,latency_us,eager\ndelivery,xx,2,3,4,5,\n");
    EXPECT_THROW(TraceLog::read_csv(in), std::runtime_error);
  }
}

TEST(TraceLog, CsvRoundTripKeepsV2Fields) {
  TraceLog log;
  log.record_delivery({1000, 3, 2, 7, 950, /*from=*/9, /*eager=*/false});
  const TraceLog::PayloadHandle h = log.record_payload({900, 0, 3, 7, true});
  log.set_payload_recv(h, 1234);

  std::ostringstream out;
  log.write_csv(out);
  std::istringstream in(out.str());
  const TraceLog parsed = TraceLog::read_csv(in);

  ASSERT_EQ(parsed.deliveries().size(), 1u);
  EXPECT_EQ(parsed.deliveries()[0].from, 9u);
  EXPECT_FALSE(parsed.deliveries()[0].eager);
  ASSERT_EQ(parsed.payloads().size(), 1u);
  EXPECT_EQ(parsed.payloads()[0].recv_time, 1234);
}

TEST(TraceLog, ReadsV1TracesWithDefaults) {
  // Pre-extension schema: 7 columns, no from/recv_time_us. Absent fields
  // take the struct defaults so old campaign logs stay loadable.
  std::istringstream in(
      "kind,time_us,node,peer,seq,latency_us,eager\n"
      "delivery,1000,3,2,7,950,\n"
      "payload,900,0,3,7,,1\n"
      "phase,0,,,,,baseline\n");
  const TraceLog parsed = TraceLog::read_csv(in);
  ASSERT_EQ(parsed.deliveries().size(), 1u);
  EXPECT_EQ(parsed.deliveries()[0].from, kInvalidNode);
  EXPECT_TRUE(parsed.deliveries()[0].eager);
  ASSERT_EQ(parsed.payloads().size(), 1u);
  EXPECT_EQ(parsed.payloads()[0].recv_time, 0);
  EXPECT_TRUE(parsed.payloads()[0].eager);
  ASSERT_EQ(parsed.phases().size(), 1u);
  EXPECT_EQ(parsed.phases()[0].label, "baseline");
}

TEST(TraceLog, HeaderOnlyParsesToEmptyLog) {
  std::istringstream in(
      "kind,time_us,node,peer,seq,latency_us,eager,from,recv_time_us\n");
  const TraceLog parsed = TraceLog::read_csv(in);
  EXPECT_EQ(parsed.delivery_count(), 0u);
  EXPECT_EQ(parsed.payload_count(), 0u);
  EXPECT_EQ(parsed.phase_count(), 0u);
}

TEST(TraceLog, RejectsWrongFieldCounts) {
  // 8 fields is neither schema v1 (7) nor v2 (9).
  std::istringstream in(
      "kind,time_us,node,peer,seq,latency_us,eager,from,recv_time_us\n"
      "delivery,1,2,3,4,5,1,6\n");
  EXPECT_THROW(TraceLog::read_csv(in), std::runtime_error);
}

TEST(TraceLog, RejectsCommaInPhaseLabel) {
  TraceLog log;
  EXPECT_THROW(log.record_phase({0, "warm,up"}), CheckFailure);
  EXPECT_THROW(log.record_phase({0, "two\nlines"}), CheckFailure);
  EXPECT_EQ(log.phase_count(), 0u);
}

TEST(TraceLog, StreamingMatchesBufferedRowForRow) {
  auto record = [](TraceLog& log) {
    log.record_phase({0, "baseline"});
    const TraceLog::PayloadHandle a = log.record_payload({900, 0, 3, 7, true});
    log.set_payload_recv(a, 1000);
    log.record_delivery({1000, 3, 0, 7, 100, 0, true});
    // Never acknowledged: the streamed row must still appear at flush().
    log.record_payload({1100, 3, 5, 7, false});
    log.flush();
  };

  TraceLog buffered;
  record(buffered);
  std::ostringstream buffered_csv;
  buffered.write_csv(buffered_csv);

  std::ostringstream streamed_csv;
  TraceLog streaming;
  streaming.stream_to(streamed_csv);
  record(streaming);

  EXPECT_TRUE(streaming.streaming());
  EXPECT_EQ(streaming.delivery_count(), 1u);
  EXPECT_EQ(streaming.payload_count(), 2u);
  EXPECT_EQ(streaming.phase_count(), 1u);
  EXPECT_TRUE(streaming.deliveries().empty());  // nothing retained

  // Buffered write_csv groups rows by kind while streaming emits them in
  // record order, so compare as sorted row sets.
  auto rows = [](const std::string& text) {
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(rows(buffered_csv.str()), rows(streamed_csv.str()));

  // Streamed output parses back to the same events.
  std::istringstream in(streamed_csv.str());
  const TraceLog parsed = TraceLog::read_csv(in);
  EXPECT_EQ(parsed.deliveries().size(), 1u);
  EXPECT_EQ(parsed.payloads().size(), 2u);
  EXPECT_EQ(parsed.phases().size(), 1u);
}

TEST(TraceLog, StreamingModeRestrictsBufferedApis) {
  std::ostringstream sink;
  {
    TraceLog log;
    log.record_delivery({1000, 3, 0, 7, 100});
    // Too late: rows already buffered.
    EXPECT_THROW(log.stream_to(sink), CheckFailure);
  }
  {
    TraceLog log;
    log.stream_to(sink);
    std::ostringstream out;
    EXPECT_THROW(log.write_csv(out), CheckFailure);
  }
}

TEST(TraceLog, HarnessTraceMatchesAggregates) {
  harness::ExperimentConfig c;
  c.seed = 21;
  c.num_nodes = 30;
  c.num_messages = 40;
  c.warmup = 10 * kSecond;
  c.topology.num_underlay_vertices = 400;
  c.topology.num_transit_domains = 3;
  c.topology.transit_per_domain = 6;
  c.strategy = harness::StrategySpec::make_ttl(2);
  c.collect_trace = true;
  const harness::ExperimentResult r = harness::run_experiment(c);
  ASSERT_NE(r.trace, nullptr);

  // The trace's payload events equal the transport's payload packets, and
  // deliveries equal num_messages x num_nodes (no loss, no failures).
  EXPECT_EQ(r.trace->payloads().size(), r.payload_packets);
  EXPECT_EQ(r.trace->deliveries().size(),
            static_cast<std::size_t>(c.num_messages) * c.num_nodes);
  // Per-message payload counts match the harness accounting.
  for (std::uint32_t seq = 0; seq < c.num_messages; ++seq) {
    EXPECT_EQ(r.trace->payloads_for(seq), r.payload_tx_per_message[seq]);
  }
  // Latency recorded per delivery is non-negative and zero at origins.
  // Every non-origin delivery carries its tree parent (no loss in this
  // configuration, so every delivery came through the payload scheduler).
  std::size_t origin_deliveries = 0;
  for (const DeliveryEvent& e : r.trace->deliveries()) {
    EXPECT_GE(e.latency, 0);
    if (e.node == e.origin) {
      EXPECT_EQ(e.latency, 0);
      ++origin_deliveries;
    } else {
      EXPECT_NE(e.from, kInvalidNode);
      EXPECT_NE(e.from, e.node);
    }
  }
  EXPECT_EQ(origin_deliveries, c.num_messages);
  // Payload receive timestamps are filled in and causally ordered.
  std::size_t received = 0;
  for (const PayloadEvent& e : r.trace->payloads()) {
    if (e.recv_time != 0) {
      EXPECT_GT(e.recv_time, e.time);
      ++received;
    }
  }
  EXPECT_GT(received, 0u);
}

TEST(TraceLog, DisabledByDefault) {
  harness::ExperimentConfig c;
  c.seed = 21;
  c.num_nodes = 20;
  c.num_messages = 10;
  c.warmup = 8 * kSecond;
  c.topology.num_underlay_vertices = 400;
  c.topology.num_transit_domains = 3;
  c.topology.transit_per_domain = 6;
  const harness::ExperimentResult r = harness::run_experiment(c);
  EXPECT_EQ(r.trace, nullptr);
}

}  // namespace
}  // namespace esm::trace
