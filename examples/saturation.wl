# Saturation probe: eight Poisson publishers push the system toward its
# serialization knee. Pair with a tight egress (--bandwidth) and a bounded
# drop-oldest buffer so queueing delay — not loss — is the first symptom,
# as in the paper's low-bandwidth runs (§5, 64 kbit/s configs).
#
#   esm_run --nodes 100 --workload examples/saturation.wl \
#           --bandwidth 4000000 --buffer 49152 --purge oldest --kv
#
# Sweep the offered load to locate the knee:
#
#   esm_sweep --nodes 100 --workload examples/saturation.wl \
#             --bandwidth 4000000 --buffer 49152 --purge oldest \
#             --param rate --values 5,10,20,40,80 --seeds 5

duration 20s

publisher poisson rate=10
publisher poisson rate=10
publisher poisson rate=10
publisher poisson rate=10
publisher poisson rate=10
publisher poisson rate=10
publisher poisson rate=10
publisher poisson rate=10
