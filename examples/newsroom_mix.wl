# Mixed newsroom traffic: a steady wire feed, a bursty breaking-news
# desk confined to a hot topic, and a fixed-rate heartbeat pinned to one
# node. Exercises every arrival process, topic fan-out and per-publisher
# start/stop windows in one run.
#
#   esm_run --nodes 100 --workload examples/newsroom_mix.wl --kv

duration 30s

# 30% of the membership subscribes to the breaking-news topic; the
# subset is seed-deterministic (sorted sample of the node pool).
topic breaking fraction=0.3

# Steady background wire feed from rotating origins.
publisher poisson rate=20 payload=512

# Breaking-news desk: 400ms bursts every 2s, only topic members accept.
publisher burst rate=60 on=400ms off=1600ms topic=breaking

# Heartbeat pinned to node 0, running only in the middle of the run.
publisher fixed rate=2 node=0 start=5s stop=25s payload=64
