// Robustness to stale knowledge: the §4.3/§6.5 noise story as an
// operator would experience it.
//
// Scenario: a live-event fan-out service uses the Ranked strategy with
// node rankings computed from monitoring data. Monitoring degrades —
// metrics go stale, the ranking becomes increasingly wrong. How badly does
// the service degrade? This example sweeps the noise ratio and shows that
// performance degrades gracefully toward (never below) the plain gossip
// baseline, while delivery reliability stays untouched — the property
// that makes emergent structure safe to deploy.
//
// Run: ./adaptive_hybrid
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main() {
  using namespace esm;
  using harness::ExperimentConfig;
  using harness::StrategySpec;
  using harness::Table;

  ExperimentConfig base;
  base.seed = 5;
  base.num_nodes = 100;
  base.num_messages = 150;

  // Baselines the noisy runs must stay between.
  ExperimentConfig eager_config = base;
  eager_config.strategy = StrategySpec::make_flat(1.0);
  const auto eager = harness::run_experiment(eager_config);

  ExperimentConfig lazy_config = base;
  lazy_config.strategy = StrategySpec::make_flat(0.0);
  const auto lazy = harness::run_experiment(lazy_config);

  Table table("ranked fan-out under degrading monitoring data");
  table.header({"ranking quality", "latency ms", "payload/msg",
                "top-5% share %", "deliveries %"});
  table.row({"(pure eager bound)", Table::num(eager.mean_latency_ms, 0),
             Table::num(eager.load_all.payload_per_msg, 2),
             Table::num(100.0 * eager.top5_connection_share, 1),
             Table::num(100.0 * eager.mean_delivery_fraction, 2)});

  for (const double noise : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ExperimentConfig config = base;
    config.strategy = StrategySpec::make_ranked(0.2);
    config.strategy.noise = noise;
    const auto r = harness::run_experiment(config);
    std::string label;
    if (noise == 0.0) {
      label = "perfect ranking";
    } else if (noise < 1.0) {
      label = Table::num(100.0 * noise, 0) + "% noise";
    } else {
      label = "ranking fully random";
    }
    table.row({label, Table::num(r.mean_latency_ms, 0),
               Table::num(r.load_all.payload_per_msg, 2),
               Table::num(100.0 * r.top5_connection_share, 1),
               Table::num(100.0 * r.mean_delivery_fraction, 2)});
  }
  table.row({"(pure lazy bound)", Table::num(lazy.mean_latency_ms, 0),
             Table::num(lazy.load_all.payload_per_msg, 2),
             Table::num(100.0 * lazy.top5_connection_share, 1),
             Table::num(100.0 * lazy.mean_delivery_fraction, 2)});
  table.print();

  std::puts(
      "\nAs the ranking decays, latency and structure interpolate smoothly\n"
      "toward the flat-gossip equivalent with the same traffic volume; the\n"
      "worst case is the ordinary gossip protocol, never worse (paper §8).\n"
      "Deliveries stay at 100% throughout: correctness is strategy-proof.");
  return 0;
}
