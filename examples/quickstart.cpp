// Quickstart: multicast over an emergent-structure gossip group.
//
// Builds a 50-node group on a synthetic wide-area network, disseminates a
// few hundred messages with the TTL strategy (eager for the first rounds,
// lazy afterwards — the paper's best simple tradeoff), and prints the
// latency/bandwidth outcome next to pure eager and pure lazy gossip.
//
// Run: ./quickstart
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main() {
  using namespace esm;
  using harness::StrategySpec;

  harness::ExperimentConfig config;
  config.seed = 7;
  config.num_nodes = 50;
  config.num_messages = 150;
  config.warmup = 20 * kSecond;

  harness::Table table("quickstart: 50 nodes, 150 multicasts, fanout 11");
  table.header({"strategy", "latency ms", "payload/msg", "deliveries %",
                "dup payloads"});

  struct Case {
    const char* name;
    StrategySpec spec;
  };
  const Case cases[] = {
      {"eager (flat pi=1)", StrategySpec::make_flat(1.0)},
      {"lazy  (flat pi=0)", StrategySpec::make_flat(0.0)},
      {"ttl u=2", StrategySpec::make_ttl(2)},
  };

  for (const Case& c : cases) {
    config.strategy = c.spec;
    const harness::ExperimentResult r = harness::run_experiment(config);
    table.row({c.name, harness::Table::num(r.mean_latency_ms, 1),
               harness::Table::num(r.load_all.payload_per_msg, 2),
               harness::Table::num(100.0 * r.mean_delivery_fraction, 2),
               std::to_string(r.duplicate_payloads)});
  }
  table.print();

  std::puts(
      "\nThe TTL row should sit near eager latency at a fraction of its\n"
      "payload cost — the emergent-structure tradeoff of the paper.");
  return 0;
}
