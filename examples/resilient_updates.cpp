// Resilient software-update dissemination.
//
// Scenario: a control plane pushes configuration/update bundles to a fleet
// of 100 edge nodes over a lossy wide-area network while machines keep
// failing. The operator wants (i) every live node to get every update,
// (ii) modest egress cost on regular nodes, and (iii) no tree to repair at
// 3 a.m. This example compares pure eager gossip, pure lazy gossip and
// the paper's hybrid strategy under increasingly hostile conditions.
//
// Run: ./resilient_updates
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

int main() {
  using namespace esm;
  using harness::ExperimentConfig;
  using harness::StrategySpec;
  using harness::Table;

  ExperimentConfig base;
  base.seed = 77;
  base.num_nodes = 100;
  base.num_messages = 150;
  base.payload_bytes = 1024;  // update chunks, not chat messages

  net::TopologyParams topo_params = base.topology;
  topo_params.num_clients = base.num_nodes;
  const net::Topology topo = net::generate_topology(topo_params, base.seed);
  const net::ClientMetrics metrics = net::compute_client_metrics(topo);
  const double rho = to_ms(metrics.latency_quantile(0.10));

  struct Scenario {
    const char* name;
    double loss;
    double dead;
  };
  const Scenario scenarios[] = {
      {"healthy network", 0.0, 0.0},
      {"1% packet loss", 0.01, 0.0},
      {"loss + 20% nodes dead", 0.01, 0.2},
      {"loss + 40% nodes dead", 0.01, 0.4},
  };
  struct Protocol {
    const char* name;
    StrategySpec spec;
  };
  const Protocol protocols[] = {
      {"eager gossip", StrategySpec::make_flat(1.0)},
      {"lazy gossip", StrategySpec::make_flat(0.0)},
      {"hybrid (paper)", StrategySpec::make_hybrid(rho, 3, 0.1)},
  };

  Table table("fleet update dissemination: 100 nodes, 1 KiB updates");
  table.header({"scenario", "protocol", "deliveries %", "latency ms",
                "payload/msg", "regular-node payload/msg"});

  for (const Scenario& s : scenarios) {
    for (const Protocol& p : protocols) {
      ExperimentConfig config = base;
      config.strategy = p.spec;
      config.loss_rate = s.loss;
      config.kill_fraction = s.dead;
      config.kill_mode =
          s.dead > 0.0 ? harness::KillMode::random : harness::KillMode::none;
      const auto r = harness::run_experiment(config);
      table.row({s.name, p.name,
                 Table::num(100.0 * r.mean_delivery_fraction, 2),
                 Table::num(r.mean_latency_ms, 0),
                 Table::num(r.load_all.payload_per_msg, 2),
                 Table::num(r.load_low.payload_per_msg, 2)});
    }
  }
  table.print();

  std::puts(
      "\nReading the table: eager gossip is fast and bulletproof but costs\n"
      "~11 uploads per node per update; lazy gossip is cheap but slow; the\n"
      "hybrid keeps regular-node egress near the lazy optimum with latency\n"
      "close to eager — and failures never require structural repair.");
  return 0;
}
