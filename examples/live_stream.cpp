// Live event streaming: one producer, a hundred subscribers.
//
// A single-source feed is the best case for emergent structure: the
// implicit delivery tree can specialize to the producer. This example runs
// the same feed over four dissemination stacks and shows the operator's
// dashboard view — latency, per-subscriber upload cost, and what happens
// when 20% of the subscribers vanish mid-event:
//
//   * eager gossip              (burns ~11x upload on every subscriber)
//   * lazy gossip               (cheap but a round trip per hop)
//   * hybrid strategy           (the paper's recommendation)
//   * adaptive links/HyParView  (Plumtree-style: learns the tree online)
//
// Run: ./live_stream
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

int main() {
  using namespace esm;
  using harness::ExperimentConfig;
  using harness::StrategySpec;
  using harness::Table;

  ExperimentConfig base;
  base.seed = 404;
  base.num_nodes = 100;
  base.num_messages = 300;
  base.payload_bytes = 1400;             // one MTU-ish media chunk
  base.mean_interval = 100 * kMillisecond;  // 10 chunks/s
  base.single_sender = 0;                // the producer

  net::TopologyParams topo_params = base.topology;
  topo_params.num_clients = base.num_nodes;
  const net::Topology topo = net::generate_topology(topo_params, base.seed);
  const net::ClientMetrics metrics = net::compute_client_metrics(topo);
  const double rho = to_ms(metrics.latency_quantile(0.10));

  struct Stack {
    const char* name;
    ExperimentConfig config;
  };
  auto make = [&](StrategySpec spec) {
    ExperimentConfig c = base;
    c.strategy = spec;
    return c;
  };
  ExperimentConfig adaptive = make(StrategySpec::make_adaptive());
  adaptive.overlay_kind = harness::OverlayKind::hyparview;
  adaptive.overlay.view_size = 8;
  adaptive.gossip.fanout = 16;
  adaptive.gossip.exclude_sender = true;

  const Stack stacks[] = {
      {"eager gossip", make(StrategySpec::make_flat(1.0))},
      {"lazy gossip", make(StrategySpec::make_flat(0.0))},
      {"hybrid (paper)", make(StrategySpec::make_hybrid(rho, 3, 0.05))},
      {"adaptive + HyParView", adaptive},
  };

  for (const bool churn : {false, true}) {
    Table table(churn ? "live stream: 20% of subscribers fail mid-event"
                      : "live stream: stable audience");
    table.header({"stack", "p50 ms", "p95 ms", "chunks received %",
                  "uploads per chunk per subscriber"});
    for (const Stack& s : stacks) {
      ExperimentConfig config = s.config;
      if (churn) {
        config.kill_fraction = 0.2;
        config.kill_mode = harness::KillMode::random;
      }
      const auto r = harness::run_experiment(config);
      table.row({s.name, Table::num(r.p50_latency_ms, 0),
                 Table::num(r.p95_latency_ms, 0),
                 Table::num(100.0 * r.mean_delivery_fraction, 2),
                 Table::num(r.load_all.payload_per_msg, 2)});
    }
    table.print();
  }

  std::puts(
      "\nThe adaptive stack converges to a producer-rooted tree: each\n"
      "subscriber uploads about one copy per chunk (vs ~11 under eager\n"
      "gossip) at comparable tail latency, and the lazy advertisements it\n"
      "keeps sending make subscriber failures a non-event — the stream\n"
      "reroutes without any operator action.");
  return 0;
}
