// ISP super-peers: explicitly configured best nodes (paper §4.1: "some
// nodes can be explicitly configured as best nodes, for instance, by an
// Internet Service Provider that wants to improve performance to local
// users").
//
// Unlike the other examples this one wires the protocol stack directly
// from the library's public API — transport, Cyclon membership, payload
// scheduler, gossip layer — instead of going through the experiment
// harness, which is what an adopting application would do. Three
// provisioned nodes are designated super-peers; everything else is a
// regular client.
//
// Run: ./isp_superpeers
#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "core/gossip.hpp"
#include "core/scheduler.hpp"
#include "core/strategies.hpp"
#include "harness/table.hpp"
#include "net/latency_model.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "overlay/cyclon.hpp"
#include "sim/simulator.hpp"
#include "stats/running.hpp"

int main() {
  using namespace esm;
  constexpr std::uint32_t kNodes = 60;
  constexpr std::uint32_t kMessages = 200;
  constexpr std::uint64_t kSeed = 42;

  // --- network: synthetic WAN with ~50 ms mean client latency -------------
  net::TopologyParams topo_params;
  topo_params.num_clients = kNodes;
  topo_params.num_underlay_vertices = 800;
  const net::Topology topo = net::generate_topology(topo_params, kSeed);
  net::MatrixLatencyModel latency(net::compute_client_metrics(topo));

  sim::Simulator sim;
  net::Transport transport(sim, latency, kNodes, {}, Rng(kSeed).split(1));

  // --- the ISP provisions three super-peers --------------------------------
  const core::StaticBestSet super_peers({3, 17, 42});

  // --- per-node protocol stacks ---------------------------------------------
  struct Node {
    std::unique_ptr<overlay::CyclonNode> membership;
    std::unique_ptr<core::RankedStrategy> strategy;
    std::unique_ptr<core::PayloadScheduler> scheduler;
    std::unique_ptr<core::GossipNode> gossip;
  };
  std::vector<Node> nodes(kNodes);
  stats::RunningStat latency_ms;
  std::uint64_t deliveries = 0;

  core::RequestPolicy policy;  // defaults: immediate first request, T=400 ms
  Rng boot(kSeed);
  for (NodeId id = 0; id < kNodes; ++id) {
    Node& node = nodes[id];
    node.membership = std::make_unique<overlay::CyclonNode>(
        sim, transport, id, overlay::OverlayParams{}, Rng(kSeed).split(100 + id));
    std::vector<NodeId> contacts;
    while (contacts.size() < 10) {
      const NodeId c = static_cast<NodeId>(boot.below(kNodes));
      if (c != id) contacts.push_back(c);
    }
    node.membership->bootstrap(contacts);

    node.strategy =
        std::make_unique<core::RankedStrategy>(id, super_peers, policy);
    node.scheduler = std::make_unique<core::PayloadScheduler>(
        sim, transport, id, *node.strategy,
        [&nodes, id](const core::AppMessage& msg, Round r, NodeId src) {
          nodes[id].gossip->l_receive(msg, r, src);
        });
    node.gossip = std::make_unique<core::GossipNode>(
        id, core::GossipParams{/*fanout=*/9, /*max_rounds=*/7},
        *node.membership, *node.scheduler,
        [&, id](const core::AppMessage& msg) {
          ++deliveries;
          if (msg.origin != id) {
            latency_ms.add(to_ms(sim.now() - msg.multicast_time));
          }
        },
        Rng(kSeed).split(200 + id));
    transport.register_handler(id, [&nodes, id](NodeId src,
                                                const net::PacketPtr& p) {
      if (nodes[id].membership->handle_packet(src, p)) return;
      nodes[id].scheduler->handle_packet(src, p);
    });
  }

  // --- run: join, warm up, then multicast from random clients ---------------
  for (auto& node : nodes) node.membership->start();
  sim.run_until(15 * kSecond);
  transport.stats().reset();

  Rng traffic(kSeed ^ 0x5eed);
  SimTime t = sim.now();
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    t += traffic.range(0, kSecond);
    const NodeId sender = static_cast<NodeId>(traffic.below(kNodes));
    sim.schedule_at(t, [&nodes, sender, i, &sim] {
      nodes[sender].gossip->multicast(512, i, sim.now());
    });
  }
  sim.run_until(t + 5 * kSecond);

  // --- report ----------------------------------------------------------------
  const auto& stats = transport.stats();
  harness::Table table("ISP super-peers: per-node payload contribution");
  table.header({"node class", "nodes", "payload sent/msg", "share %"});
  std::uint64_t super_payload = 0;
  for (const NodeId sp : {3u, 17u, 42u}) {
    super_payload += stats.node_sent_payload(sp);
  }
  const std::uint64_t total_payload = stats.total_payload_packets();
  table.row({"super-peers", "3",
             harness::Table::num(static_cast<double>(super_payload) / 3.0 /
                                     kMessages,
                                 2),
             harness::Table::num(total_payload ? 100.0 * static_cast<double>(
                                                     super_payload) /
                                                     static_cast<double>(
                                                         total_payload)
                                               : 0.0,
                                 1)});
  table.row(
      {"regular clients", std::to_string(kNodes - 3),
       harness::Table::num(static_cast<double>(total_payload - super_payload) /
                               static_cast<double>(kNodes - 3) / kMessages,
                           2),
       harness::Table::num(total_payload ? 100.0 * static_cast<double>(
                                               total_payload - super_payload) /
                                               static_cast<double>(
                                                   total_payload)
                                         : 0.0,
                           1)});
  table.print();

  std::printf(
      "\n%llu deliveries (expected %u), mean latency %.0f ms, "
      "%.2f payloads per delivery.\n",
      static_cast<unsigned long long>(deliveries), kNodes * kMessages,
      latency_ms.mean(),
      static_cast<double>(total_payload) / static_cast<double>(deliveries));
  std::puts(
      "Three provisioned super-peers carry a disproportionate share of the\n"
      "payload traffic, yet the protocol stays plain gossip: if they fail,\n"
      "dissemination degrades gracefully to the lazy-push baseline.");
  return 0;
}
