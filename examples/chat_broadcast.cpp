// Group chat over emergent-structure gossip: real payload content
// end-to-end through the wire codec.
//
// A 20-member group exchanges text messages over the adaptive
// (Plumtree-style) stack on a NeEM overlay. Every packet is serialized
// through the real codec (as a deployment over UDP would), and each
// member reconstructs the exact byte content. Demonstrates the
// content-carrying API: GossipNode::multicast(std::vector<uint8_t>, ...)
// and AppMessage::data at delivery.
//
// Run: ./chat_broadcast
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/gossip.hpp"
#include "core/scheduler.hpp"
#include "core/strategies.hpp"
#include "net/latency_model.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "overlay/neem.hpp"
#include "sim/simulator.hpp"
#include "wire/codec.hpp"

int main() {
  using namespace esm;
  constexpr std::uint32_t kMembers = 20;
  constexpr std::uint64_t kSeed = 1234;

  net::TopologyParams topo_params;
  topo_params.num_clients = kMembers;
  topo_params.num_underlay_vertices = 600;
  topo_params.num_transit_domains = 3;
  topo_params.transit_per_domain = 6;
  const net::Topology topo = net::generate_topology(topo_params, kSeed);
  net::MatrixLatencyModel latency(net::compute_client_metrics(topo));

  sim::Simulator sim;
  const wire::WireCodec codec;
  net::TransportOptions opts;
  opts.codec = &codec;  // all traffic really serialized
  net::Transport transport(sim, latency, kMembers, opts, Rng(kSeed).split(1));

  struct Member {
    std::string name;
    std::unique_ptr<overlay::NeemNode> membership;
    std::unique_ptr<core::TtlStrategy> strategy;
    std::unique_ptr<core::PayloadScheduler> scheduler;
    std::unique_ptr<core::GossipNode> gossip;
    int messages_seen = 0;
  };
  std::vector<Member> members(kMembers);

  core::RequestPolicy policy;
  int corrupted = 0;
  Rng boot(kSeed ^ 0xc4a7);
  for (NodeId id = 0; id < kMembers; ++id) {
    Member& m = members[id];
    m.name = "user" + std::to_string(id);
    m.membership = std::make_unique<overlay::NeemNode>(
        sim, transport, id, overlay::NeemParams{}, Rng(kSeed).split(100 + id));
    std::vector<NodeId> contacts;
    while (contacts.size() < 5) {
      const NodeId c = static_cast<NodeId>(boot.below(kMembers));
      if (c != id) contacts.push_back(c);
    }
    m.membership->bootstrap(contacts);
    m.strategy = std::make_unique<core::TtlStrategy>(2, policy);
    m.scheduler = std::make_unique<core::PayloadScheduler>(
        sim, transport, id, *m.strategy,
        [&members, id](const core::AppMessage& msg, Round r, NodeId src) {
          members[id].gossip->l_receive(msg, r, src);
        });
    m.gossip = std::make_unique<core::GossipNode>(
        id, core::GossipParams{6, 6}, *m.membership, *m.scheduler,
        [&members, &corrupted, id, &sim](const core::AppMessage& msg) {
          Member& self = members[id];
          ++self.messages_seen;
          if (msg.data == nullptr) {
            ++corrupted;  // content must always arrive
            return;
          }
          const std::string text(msg.data->begin(), msg.data->end());
          // Print a few deliveries at one member so the run is visible.
          if (id == 7 && msg.origin != id) {
            std::printf("[%6.2fs] user%u -> user7: %s\n",
                        static_cast<double>(sim.now()) / kSecond, msg.origin,
                        text.c_str());
          }
        },
        Rng(kSeed).split(200 + id));
    transport.register_handler(id, [&members, id](NodeId src,
                                                  const net::PacketPtr& p) {
      if (members[id].membership->handle_packet(src, p)) return;
      members[id].scheduler->handle_packet(src, p);
    });
  }
  for (auto& m : members) m.membership->start();
  sim.run_until(10 * kSecond);

  const char* lines[] = {
      "anyone up for lunch?",        "the deploy is green",
      "who broke the build?",        "fixed it, sorry",
      "emergent structure is neat",  "push or pull?",
      "lazy push, obviously",        "ship it",
  };
  Rng chat(kSeed ^ 0x77);
  SimTime t = sim.now();
  std::uint32_t seq = 0;
  for (const char* line : lines) {
    t += chat.range(200 * kMillisecond, 2 * kSecond);
    const NodeId speaker = static_cast<NodeId>(chat.below(kMembers));
    core::GossipNode* gossip = members[speaker].gossip.get();
    const std::string text = std::string(line);
    sim.schedule_at(t, [gossip, text, seq, &sim] {
      gossip->multicast(std::vector<std::uint8_t>(text.begin(), text.end()),
                        seq, sim.now());
    });
    ++seq;
  }
  sim.run_until(t + 5 * kSecond);

  int complete = 0;
  for (const Member& m : members) {
    if (m.messages_seen == static_cast<int>(std::size(lines))) ++complete;
  }
  std::printf(
      "\n%d/%u members received all %zu messages; %d corrupted payloads.\n",
      complete, kMembers, std::size(lines), corrupted);
  std::puts(
      "Every byte travelled through the real wire format (framed, "
      "checksummed)\nand the lazy/eager scheduler — this is the stack a "
      "deployment would run.");
  return corrupted == 0 && complete == static_cast<int>(kMembers) ? 0 : 1;
}
