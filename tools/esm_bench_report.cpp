// esm_bench_report: fixed sweep workload + machine-readable perf report.
//
// Runs the same 8-point pi sweep every time (flat strategy, 100 nodes,
// 200 messages, seed 2007) and writes BENCH_sweep.json with wall-clock,
// aggregate events/sec and the per-point metric fingerprint. The workload
// is pinned so numbers are comparable across commits: re-run on the same
// machine before and after a change and diff the JSON.
//
//   esm_bench_report                  # all cores, writes BENCH_sweep.json
//   esm_bench_report --jobs 1         # serial baseline
//   esm_bench_report --out perf.json
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/config.hpp"
#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "harness/scenario_text.hpp"

int main(int argc, char** argv) {
  using namespace esm;
  std::vector<std::string> args(argv + 1, argv + argc);

  std::string out_path = "BENCH_sweep.json";
  for (std::size_t i = 0; i < args.size();) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else {
      ++i;
    }
  }
  std::string error;
  const unsigned jobs = harness::extract_jobs_flag(args, error);
  if (jobs == 0) {
    std::fprintf(stderr, "esm_bench_report: %s\n", error.c_str());
    return 2;
  }
  if (!args.empty()) {
    std::fprintf(stderr,
                 "esm_bench_report: unknown flag %s (takes --jobs N and "
                 "--out FILE only; the workload is fixed by design)\n",
                 args[0].c_str());
    return 2;
  }

  // The fixed workload: one flat-strategy point per pi value, plus one
  // fault-scenario point exercising the injector path (crash + partition
  // + loss burst + churn pulse) so BENCH_sweep.json tracks fault-path
  // performance too. Do not change these constants — the point of the
  // tool is cross-commit comparability of both the timings and the
  // metric fingerprint.
  constexpr double kPis[] = {0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 0.3};
  constexpr std::uint64_t kSeed = 2007;
  static const char* const kFaultScenario =
      "0s    phase baseline\n"
      "10s   phase kill\n"
      "10s   crash random 10\n"
      "20s   loss rate=0.05 for=10s\n"
      "30s   phase partition\n"
      "30s   partition 0..24 | 25..49\n"
      "45s   heal\n"
      "45s   churn rate=2 for=15s\n"
      "60s   phase recovered\n"
      "60s   recover all\n";
  std::vector<harness::ExperimentConfig> configs;
  for (const double pi : kPis) {
    harness::ExperimentConfig config;
    config.seed = kSeed;
    config.num_nodes = 100;
    config.num_messages = 200;
    config.strategy = harness::StrategySpec::make_flat(pi);
    configs.push_back(config);
  }
  {
    harness::ExperimentConfig config;
    config.seed = kSeed;
    config.num_nodes = 100;
    config.num_messages = 200;
    config.strategy = harness::StrategySpec::make_flat(1.0);
    config.scenario = harness::parse_scenario(std::string(kFaultScenario));
    configs.push_back(config);
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<harness::ExperimentResult> results;
  try {
    results = harness::run_experiments(configs, jobs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esm_bench_report: %s\n", e.what());
    return 1;
  }
  const auto stop = std::chrono::steady_clock::now();
  const double wall_s =
      std::chrono::duration<double>(stop - start).count();

  std::uint64_t total_events = 0;
  for (const auto& r : results) total_events += r.events_executed;
  const double events_per_sec =
      wall_s > 0.0 ? static_cast<double>(total_events) / wall_s : 0.0;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "esm_bench_report: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  char buf[384];
  out << "{\n";
  std::snprintf(buf, sizeof(buf),
                "  \"workload\": \"flat pi sweep, 8 points + 1 fault "
                "scenario, 100 nodes, 200 messages, seed %llu\",\n",
                static_cast<unsigned long long>(kSeed));
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"jobs\": %u,\n", jobs);
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"hardware_concurrency\": %u,\n",
                harness::default_jobs());
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"points\": %zu,\n", results.size());
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"wall_clock_seconds\": %.3f,\n",
                wall_s);
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"total_events\": %llu,\n",
                static_cast<unsigned long long>(total_events));
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"events_per_second\": %.0f,\n",
                events_per_sec);
  out << buf;
  out << "  \"results\": [\n";
  constexpr std::size_t kNumPis = sizeof(kPis) / sizeof(kPis[0]);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const bool fault_point = i >= kNumPis;
    std::snprintf(buf, sizeof(buf),
                  "    {\"label\": \"%s\", \"pi\": %g, \"latency_ms\": %.3f, "
                  "\"payload_per_msg\": %.3f, \"deliveries\": %.5f, "
                  "\"iwant_retries\": %llu, \"recovery_stalled\": %llu, "
                  "\"faults_injected\": %llu, \"events\": %llu}%s\n",
                  fault_point ? "fault_scenario" : "flat",
                  fault_point ? 1.0 : kPis[i], r.mean_latency_ms,
                  r.load_all.payload_per_msg, r.mean_delivery_fraction,
                  static_cast<unsigned long long>(r.iwant_retries),
                  static_cast<unsigned long long>(r.recovery_stalled),
                  static_cast<unsigned long long>(r.faults_injected),
                  static_cast<unsigned long long>(r.events_executed),
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  out.close();

  std::printf(
      "wall-clock %.3f s | %llu events | %.0f events/s | jobs %u\n"
      "report written to %s\n",
      wall_s, static_cast<unsigned long long>(total_events), events_per_sec,
      jobs, out_path.c_str());
  return 0;
}
