// esm_bench_report: fixed sweep workload + machine-readable perf report.
//
// Runs the same 8-point pi sweep every time (flat strategy, 100 nodes,
// 200 messages, seed 2007) and writes BENCH_sweep.json with wall-clock,
// aggregate events/sec, peak RSS, allocation counters and the per-point
// metric fingerprint. The workload is pinned so numbers are comparable
// across commits: re-run on the same machine before and after a change
// and diff the JSON.
//
// Memory columns: `peak_rss_mb` is ru_maxrss (process-lifetime
// high-water, so per-point values are running maxima); `alloc_count` /
// `alloc_mb` come from the counting allocator (common/alloc_counter.hpp).
// Per-point attribution needs the points to run one at a time, so it is
// recorded at --jobs 1 only; parallel runs report process totals and
// zero per-point memory fields.
//
//   esm_bench_report                  # all cores, writes BENCH_sweep.json
//   esm_bench_report --jobs 1         # serial baseline, per-point memory
//   esm_bench_report --scale          # adds the 50k-node scale point
//   esm_bench_report --scale --huge   # adds 200k and 1M points (slow)
//   esm_bench_report --load-sweep     # adds the saturation-knee sweep and
//                                     # the 50k-node / 32-publisher
//                                     # heavy-traffic point (load_sweep)
//   esm_bench_report --out perf.json
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/alloc_counter.hpp"
#include "harness/config.hpp"
#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "harness/scenario_text.hpp"

namespace {

double peak_rss_mb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // ru_maxrss is KB
}

struct PointCost {
  double wall_s = 0.0;
  double peak_rss_mb = 0.0;  // running high-water after the point
  std::uint64_t alloc_count = 0;
  double alloc_mb = 0.0;
};

struct ScalePoint {
  std::uint32_t nodes = 0;
  double wall_s = 0.0;
  double peak_rss_mb = 0.0;
  double alloc_mb = 0.0;
  double deliveries = 0.0;
  std::uint64_t events = 0;
  std::uint64_t alloc_count = 0;
};

/// The fixed large-N workload (mirrors bench_scale_large): lazy push on a
/// static random overlay, 20 messages. Serial by design at shards == 1;
/// shards >= 2 runs the same workload through sim::ShardedSimulator and
/// measures intra-run speedup. These are the numbers the CI perf guard
/// and the README scale table track.
bool run_scale_point(std::uint32_t nodes, ScalePoint& out,
                     std::uint32_t shards = 1) {
  using namespace esm;
  harness::ExperimentConfig c;
  c.seed = 2007;
  c.num_nodes = nodes;
  c.shards = shards;
  c.overlay_kind = harness::OverlayKind::static_random;
  c.strategy = harness::StrategySpec::make_flat(0.0);
  c.num_messages = 20;
  c.mean_interval = 100 * kMillisecond;
  // Epidemic reach needs ~log_f(n) + c relay rounds; the paper-default
  // t = 8 saturates 50k nodes but truncates the tail above that, so the
  // huge scales raise it to 10 (mirrors bench_scale_large --huge). The
  // 50k point keeps the default for baseline comparability.
  if (nodes > 50'000u) c.gossip.max_rounds = 10;

  const alloc::Snapshot before = alloc::snapshot();
  const auto start = std::chrono::steady_clock::now();
  try {
    const harness::ExperimentResult r = harness::run_experiment(c);
    out.events = r.events_executed;
    out.deliveries = r.mean_delivery_fraction;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esm_bench_report: %u-node scale point: %s\n",
                 nodes, e.what());
    return false;
  }
  const alloc::Snapshot after = alloc::snapshot();
  out.nodes = nodes;
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count();
  out.peak_rss_mb = peak_rss_mb();
  out.alloc_count = after.count - before.count;
  out.alloc_mb = static_cast<double>(after.bytes - before.bytes) / 1048576.0;
  return true;
}

void write_scale_point(std::ofstream& out, const char* name,
                       const ScalePoint& p) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\"nodes\": %u, \"wall_clock_seconds\": %.3f, "
      "\"events\": %llu, \"events_per_second\": %.0f, "
      "\"peak_rss_mb\": %.1f, \"alloc_count\": %llu, \"alloc_mb\": %.1f, "
      "\"deliveries\": %.5f},\n",
      name, p.nodes, p.wall_s, static_cast<unsigned long long>(p.events),
      p.wall_s > 0.0 ? static_cast<double>(p.events) / p.wall_s : 0.0,
      p.peak_rss_mb, static_cast<unsigned long long>(p.alloc_count),
      p.alloc_mb, p.deliveries);
  out << buf;
}

struct LoadPoint {
  double rate = 0.0;  // per-publisher msgs/s
  double offered_per_s = 0.0;
  double goodput_per_s = 0.0;
  double redundancy = 0.0;
  double knee_ms = -1.0;
  double queue_delay_mean_ms = 0.0;
  std::uint64_t buffer_drops = 0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double deliveries = 0.0;
};

/// A k-publisher Poisson workload over a serialized egress. The knee
/// sweep uses a deliberately tight pipe (2 Mb/s, 32 KB drop-oldest
/// buffer) so the saturation onset lands inside the swept rates; the 50k
/// heavy-traffic point keeps the default 100 Mb/s egress and gates
/// *goodput* (a deterministic simulation output), not wall clock.
esm::harness::ExperimentConfig load_config(std::uint32_t nodes,
                                           std::uint32_t publishers,
                                           double rate, esm::SimTime duration,
                                           std::uint64_t bandwidth_bps,
                                           std::uint64_t buffer_bytes) {
  using namespace esm;
  harness::ExperimentConfig c;
  c.seed = 2007;
  c.num_nodes = nodes;
  c.num_messages = 0;
  c.overlay_kind = harness::OverlayKind::static_random;
  c.strategy = harness::StrategySpec::make_flat(0.0);
  c.bandwidth_bps = bandwidth_bps;
  c.egress_buffer_bytes = buffer_bytes;
  c.purge_policy = net::TransportOptions::PurgePolicy::drop_oldest;
  c.workload.duration = duration;
  for (std::uint32_t p = 0; p < publishers; ++p) {
    load::PublisherSpec pub;
    pub.arrival = load::ArrivalKind::poisson;
    pub.rate = rate;
    c.workload.publishers.push_back(pub);
  }
  return c;
}

/// The backpressure on/off pair: the knee-sweep pipe (300 nodes, 8
/// publishers, 2 Mb/s, 32 KB drop-oldest) driven by on/off burst arrivals
/// at an in-burst rate ~2x the sustained knee, under the default eager
/// strategy. This is the regime the backpressure fix targets: transient
/// saturation purges payloads without it, and defers eager pushes to the
/// lazy path with it. Both modes are recorded so the guard can gate the
/// backpressure-on goodput across commits.
esm::harness::ExperimentConfig bp_load_config(bool backpressure) {
  using namespace esm;
  harness::ExperimentConfig c =
      load_config(300, 8, 40.0, 10 * kSecond, 2'000'000, 32 * 1024);
  c.strategy = harness::StrategySpec::make_flat(1.0);
  for (auto& pub : c.workload.publishers) {
    pub.arrival = load::ArrivalKind::burst;
  }
  c.backpressure = backpressure;
  return c;
}

bool run_load_point(const esm::harness::ExperimentConfig& c, double rate,
                    LoadPoint& out) {
  using namespace esm;
  const auto start = std::chrono::steady_clock::now();
  try {
    const harness::ExperimentResult r = harness::run_experiment(c);
    out.offered_per_s = r.offered_msgs_per_s;
    out.goodput_per_s = r.goodput_msgs_per_s;
    out.redundancy = r.redundancy_ratio;
    out.knee_ms = r.knee_time_ms;
    out.queue_delay_mean_ms = r.egress_queue_delay_mean_ms;
    out.buffer_drops = r.buffer_drops;
    out.events = r.events_executed;
    out.deliveries = r.mean_delivery_fraction;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esm_bench_report: load point rate=%g: %s\n", rate,
                 e.what());
    return false;
  }
  out.rate = rate;
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esm;
  std::vector<std::string> args(argv + 1, argv + argc);

  std::string out_path = "BENCH_sweep.json";
  bool with_scale = false;
  bool with_huge = false;
  bool with_load = false;
  for (std::size_t i = 0; i < args.size();) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (args[i] == "--scale") {
      with_scale = true;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (args[i] == "--huge") {
      with_scale = true;
      with_huge = true;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (args[i] == "--load-sweep") {
      with_load = true;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  std::string error;
  const unsigned jobs = harness::extract_jobs_flag(args, error);
  if (jobs == 0) {
    std::fprintf(stderr, "esm_bench_report: %s\n", error.c_str());
    return 2;
  }
  if (!args.empty()) {
    std::fprintf(stderr,
                 "esm_bench_report: unknown flag %s (takes --jobs N, "
                 "--scale, --load-sweep and --out FILE only; the workload "
                 "is fixed by design)\n",
                 args[0].c_str());
    return 2;
  }

  // The fixed workload: one flat-strategy point per pi value, plus one
  // fault-scenario point exercising the injector path (crash + partition
  // + loss burst + churn pulse) so BENCH_sweep.json tracks fault-path
  // performance too. Do not change these constants — the point of the
  // tool is cross-commit comparability of both the timings and the
  // metric fingerprint.
  constexpr double kPis[] = {0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 0.3};
  constexpr std::uint64_t kSeed = 2007;
  static const char* const kFaultScenario =
      "0s    phase baseline\n"
      "10s   phase kill\n"
      "10s   crash random 10\n"
      "20s   loss rate=0.05 for=10s\n"
      "30s   phase partition\n"
      "30s   partition 0..24 | 25..49\n"
      "45s   heal\n"
      "45s   churn rate=2 for=15s\n"
      "60s   phase recovered\n"
      "60s   recover all\n";
  std::vector<harness::ExperimentConfig> configs;
  for (const double pi : kPis) {
    harness::ExperimentConfig config;
    config.seed = kSeed;
    config.num_nodes = 100;
    config.num_messages = 200;
    config.strategy = harness::StrategySpec::make_flat(pi);
    configs.push_back(config);
  }
  {
    harness::ExperimentConfig config;
    config.seed = kSeed;
    config.num_nodes = 100;
    config.num_messages = 200;
    config.strategy = harness::StrategySpec::make_flat(1.0);
    config.scenario = harness::parse_scenario(std::string(kFaultScenario));
    configs.push_back(config);
  }

  // Serial runs execute the points one at a time so the allocation deltas
  // and RSS high-water marks are attributable per point; parallel runs
  // keep the batched scheduler (that is what --jobs measures).
  const bool per_point = jobs == 1;
  std::vector<harness::ExperimentResult> results;
  std::vector<PointCost> costs(configs.size());
  const auto start = std::chrono::steady_clock::now();
  try {
    if (per_point) {
      results.reserve(configs.size());
      for (std::size_t i = 0; i < configs.size(); ++i) {
        const alloc::Snapshot before = alloc::snapshot();
        const auto point_start = std::chrono::steady_clock::now();
        results.push_back(harness::run_experiment(configs[i]));
        const alloc::Snapshot after = alloc::snapshot();
        costs[i].wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - point_start)
                              .count();
        costs[i].peak_rss_mb = peak_rss_mb();
        costs[i].alloc_count = after.count - before.count;
        costs[i].alloc_mb =
            static_cast<double>(after.bytes - before.bytes) / 1048576.0;
      }
    } else {
      results = harness::run_experiments(configs, jobs);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esm_bench_report: %s\n", e.what());
    return 1;
  }
  const auto stop = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(stop - start).count();

  std::uint64_t total_events = 0;
  for (const auto& r : results) total_events += r.events_executed;
  const double events_per_sec =
      wall_s > 0.0 ? static_cast<double>(total_events) / wall_s : 0.0;

  // Optional scale points — the workloads the large-N roadmap item
  // optimizes for (matching bench_scale_large). Always serial; the 50k
  // point is the number the CI perf guard compares across commits, and
  // the --huge points back the README scale table. Ascending order keeps
  // each ru_maxrss reading attributable to its own run.
  ScalePoint scale_50k, scale_50k_sharded, scale_200k, scale_1m;
  if (with_scale) {
    if (!run_scale_point(50'000u, scale_50k)) return 1;
    // Same workload through the sharded engine: the intra-run speedup the
    // CI guard gates (results are bit-identical at any shard count, so
    // only the wall clock differs).
    if (!run_scale_point(50'000u, scale_50k_sharded, 4)) return 1;
  }
  if (with_huge) {
    if (!run_scale_point(200'000u, scale_200k)) return 1;
    if (!run_scale_point(1'000'000u, scale_1m)) return 1;
  }

  // Heavy-traffic points. load_knee sweeps per-publisher rate over a
  // deliberately tight egress (300 nodes, 8 publishers, 2 Mb/s, 32 KB
  // drop-oldest buffer, 10 s) so the saturation knee is crossed inside
  // the swept range; load_sweep is the fixed 50k-node / 32-publisher
  // point whose goodput the CI guard compares across commits. Constants
  // pinned for cross-commit comparability — do not change them.
  constexpr double kLoadRates[] = {5.0, 10.0, 20.0, 40.0, 80.0};
  std::vector<LoadPoint> load_knee;
  LoadPoint load_50k;
  if (with_load) {
    for (const double rate : kLoadRates) {
      LoadPoint p;
      if (!run_load_point(load_config(300, 8, rate, 10 * kSecond, 2'000'000,
                                      32 * 1024),
                          rate, p)) {
        return 1;
      }
      load_knee.push_back(p);
    }
    if (!run_load_point(load_config(50'000u, 32, 0.125, 8 * kSecond,
                                    100'000'000, 0),
                        0.125, load_50k)) {
      return 1;
    }
  }
  LoadPoint bp_off, bp_on;
  if (with_load) {
    if (!run_load_point(bp_load_config(false), 40.0, bp_off)) return 1;
    if (!run_load_point(bp_load_config(true), 40.0, bp_on)) return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "esm_bench_report: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  const alloc::Snapshot total_alloc = alloc::snapshot();
  char buf[512];
  out << "{\n";
  std::snprintf(buf, sizeof(buf),
                "  \"workload\": \"flat pi sweep, 8 points + 1 fault "
                "scenario, 100 nodes, 200 messages, seed %llu\",\n",
                static_cast<unsigned long long>(kSeed));
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"jobs\": %u,\n", jobs);
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"hardware_concurrency\": %u,\n",
                harness::default_jobs());
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"points\": %zu,\n", results.size());
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"wall_clock_seconds\": %.3f,\n",
                wall_s);
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"total_events\": %llu,\n",
                static_cast<unsigned long long>(total_events));
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"events_per_second\": %.0f,\n",
                events_per_sec);
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"peak_rss_mb\": %.1f,\n",
                peak_rss_mb());
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"alloc_count\": %llu,\n  \"alloc_mb\": %.1f,\n"
                "  \"per_point_attribution\": %s,\n",
                static_cast<unsigned long long>(total_alloc.count),
                static_cast<double>(total_alloc.bytes) / 1048576.0,
                per_point ? "true" : "false");
  out << buf;
  if (with_scale) {
    write_scale_point(out, "scale_50k", scale_50k);
    write_scale_point(out, "scale_50k_sharded4", scale_50k_sharded);
    std::snprintf(buf, sizeof(buf), "  \"scale_50k_shard_speedup\": %.2f,\n",
                  scale_50k_sharded.wall_s > 0.0
                      ? scale_50k.wall_s / scale_50k_sharded.wall_s
                      : 0.0);
    out << buf;
  }
  if (with_huge) {
    write_scale_point(out, "scale_200k", scale_200k);
    write_scale_point(out, "scale_1m", scale_1m);
  }
  if (with_load) {
    out << "  \"load_knee\": [\n";
    for (std::size_t i = 0; i < load_knee.size(); ++i) {
      const LoadPoint& p = load_knee[i];
      std::snprintf(buf, sizeof(buf),
                    "    {\"rate\": %g, \"offered_per_s\": %.3f, "
                    "\"goodput_per_s\": %.3f, \"redundancy\": %.3f, "
                    "\"knee_ms\": %.0f, \"queue_delay_mean_ms\": %.3f, "
                    "\"buffer_drops\": %llu, \"events\": %llu, "
                    "\"wall_s\": %.3f}%s\n",
                    p.rate, p.offered_per_s, p.goodput_per_s, p.redundancy,
                    p.knee_ms, p.queue_delay_mean_ms,
                    static_cast<unsigned long long>(p.buffer_drops),
                    static_cast<unsigned long long>(p.events), p.wall_s,
                    i + 1 < load_knee.size() ? "," : "");
      out << buf;
    }
    out << "  ],\n";
    std::snprintf(
        buf, sizeof(buf),
        "  \"load_sweep\": {\"nodes\": 50000, \"publishers\": 32, "
        "\"rate\": %g, \"offered_msgs_per_s\": %.3f, "
        "\"goodput_msgs_per_s\": %.3f, \"redundancy_ratio\": %.3f, "
        "\"knee_time_ms\": %.0f, \"deliveries\": %.5f, "
        "\"events\": %llu, \"events_per_second\": %.0f, "
        "\"wall_clock_seconds\": %.3f},\n",
        load_50k.rate, load_50k.offered_per_s, load_50k.goodput_per_s,
        load_50k.redundancy, load_50k.knee_ms, load_50k.deliveries,
        static_cast<unsigned long long>(load_50k.events),
        load_50k.wall_s > 0.0
            ? static_cast<double>(load_50k.events) / load_50k.wall_s
            : 0.0,
        load_50k.wall_s);
    out << buf;
    // Flat object (the guard's extractor does not parse nesting): the
    // saturated burst point in both --backpressure modes.
    std::snprintf(
        buf, sizeof(buf),
        "  \"load_sweep_bp\": {\"nodes\": 300, \"publishers\": 8, "
        "\"rate\": 40, "
        "\"goodput_off_msgs_per_s\": %.3f, "
        "\"goodput_on_msgs_per_s\": %.3f, "
        "\"deliveries_off\": %.5f, \"deliveries_on\": %.5f, "
        "\"buffer_drops_off\": %llu, \"buffer_drops_on\": %llu, "
        "\"wall_s_off\": %.3f, \"wall_s_on\": %.3f},\n",
        bp_off.goodput_per_s, bp_on.goodput_per_s, bp_off.deliveries,
        bp_on.deliveries, static_cast<unsigned long long>(bp_off.buffer_drops),
        static_cast<unsigned long long>(bp_on.buffer_drops), bp_off.wall_s,
        bp_on.wall_s);
    out << buf;
  }
  out << "  \"results\": [\n";
  constexpr std::size_t kNumPis = sizeof(kPis) / sizeof(kPis[0]);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const bool fault_point = i >= kNumPis;
    std::snprintf(buf, sizeof(buf),
                  "    {\"label\": \"%s\", \"pi\": %g, \"latency_ms\": %.3f, "
                  "\"payload_per_msg\": %.3f, \"deliveries\": %.5f, "
                  "\"iwant_retries\": %llu, \"recovery_stalled\": %llu, "
                  "\"faults_injected\": %llu, \"events\": %llu, "
                  "\"wall_s\": %.3f, \"peak_rss_mb\": %.1f, "
                  "\"alloc_count\": %llu, \"alloc_mb\": %.1f}%s\n",
                  fault_point ? "fault_scenario" : "flat",
                  fault_point ? 1.0 : kPis[i], r.mean_latency_ms,
                  r.load_all.payload_per_msg, r.mean_delivery_fraction,
                  static_cast<unsigned long long>(r.iwant_retries),
                  static_cast<unsigned long long>(r.recovery_stalled),
                  static_cast<unsigned long long>(r.faults_injected),
                  static_cast<unsigned long long>(r.events_executed),
                  costs[i].wall_s, costs[i].peak_rss_mb,
                  static_cast<unsigned long long>(costs[i].alloc_count),
                  costs[i].alloc_mb, i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  out.close();

  std::printf(
      "wall-clock %.3f s | %llu events | %.0f events/s | jobs %u | "
      "peak RSS %.0f MB\n",
      wall_s, static_cast<unsigned long long>(total_events), events_per_sec,
      jobs, peak_rss_mb());
  for (const ScalePoint* p : {&scale_50k, &scale_50k_sharded, &scale_200k,
                              &scale_1m}) {
    if (p->nodes == 0) continue;
    std::printf(
        "scale %uk%s: %.3f s | %llu events | %.0f events/s | "
        "peak RSS %.0f MB | deliveries %.3f%%\n",
        p->nodes / 1000, p == &scale_50k_sharded ? " (shards 4)" : "",
        p->wall_s, static_cast<unsigned long long>(p->events),
        p->wall_s > 0.0 ? static_cast<double>(p->events) / p->wall_s : 0.0,
        p->peak_rss_mb, 100.0 * p->deliveries);
  }
  if (scale_50k_sharded.nodes != 0 && scale_50k_sharded.wall_s > 0.0) {
    std::printf("scale 50k shard speedup: %.2fx\n",
                scale_50k.wall_s / scale_50k_sharded.wall_s);
  }
  for (const LoadPoint& p : load_knee) {
    char knee[32];
    if (p.knee_ms < 0) {
      std::snprintf(knee, sizeof(knee), "none");
    } else {
      std::snprintf(knee, sizeof(knee), "%.0f ms", p.knee_ms);
    }
    std::printf(
        "load rate %g: offered %.1f/s | goodput %.1f/s | redundancy %.2f | "
        "knee %s | drops %llu\n",
        p.rate, p.offered_per_s, p.goodput_per_s, p.redundancy, knee,
        static_cast<unsigned long long>(p.buffer_drops));
  }
  if (load_50k.events > 0) {
    std::printf(
        "load 50k/32pub: %.3f s | offered %.1f/s | goodput %.1f/s | "
        "redundancy %.2f | deliveries %.3f%%\n",
        load_50k.wall_s, load_50k.offered_per_s, load_50k.goodput_per_s,
        load_50k.redundancy, 100.0 * load_50k.deliveries);
  }
  std::printf("report written to %s\n", out_path.c_str());
  return 0;
}
