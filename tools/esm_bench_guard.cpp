// esm_bench_guard: cross-commit regression gate for BENCH_sweep.json.
//
// Compares a freshly generated report against the baseline committed in
// the repository and fails (exit 1) on either gated regression:
//
//   * scale_50k.events_per_second dropped more than the allowed fraction
//     (throughput gate — machine-relative, hence the generous margin);
//   * load_sweep.goodput_msgs_per_s dropped more than the allowed
//     fraction at the 50k-node / 32-publisher heavy-traffic point. This
//     is a *deterministic simulation output*, so any drop at all is a
//     behavioral change; the shared margin merely absorbs intentional
//     protocol tuning between baseline refreshes;
//   * load_sweep_bp.goodput_on_msgs_per_s dropped more than the allowed
//     fraction at the saturated burst point with --backpressure on —
//     the same determinism argument applies, and this gate specifically
//     protects the egress-backpressure + drop-recovery path.
//
// CI runs:
//
//   esm_bench_report --scale --load-sweep --out bench-fresh.json
//   esm_bench_guard bench-fresh.json BENCH_sweep.json          # 15% gate
//   esm_bench_guard fresh.json base.json --max-drop 0.25       # custom
//
// Both files are esm_bench_report output, so a purpose-built field
// extractor is enough — no JSON library needed. A baseline without a
// scale_50k (or load_sweep) section passes that gate with a note
// (bootstrap case: each gate arms itself once its baseline section is
// committed). RSS is reported for context but not gated: CI machines
// vary more in memory layout than in relative throughput.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Extracts `"field": <number>` from the object that follows
/// `"section": {`. Returns false when the section or field is absent.
bool extract(const std::string& json, const std::string& section,
             const std::string& field, double& value) {
  const auto sec = json.find("\"" + section + "\"");
  if (sec == std::string::npos) return false;
  const auto open = json.find('{', sec);
  const auto close = json.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return false;
  const std::string body = json.substr(open, close - open);
  const auto key = body.find("\"" + field + "\"");
  if (key == std::string::npos) return false;
  const auto colon = body.find(':', key);
  if (colon == std::string::npos) return false;
  value = std::strtod(body.c_str() + colon + 1, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  double max_drop = 0.15;
  for (std::size_t i = 0; i < args.size();) {
    if (args[i] == "--max-drop" && i + 1 < args.size()) {
      max_drop = std::strtod(args[i + 1].c_str(), nullptr);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else {
      ++i;
    }
  }
  if (args.size() != 2 || max_drop <= 0.0 || max_drop >= 1.0) {
    std::fprintf(stderr,
                 "usage: esm_bench_guard FRESH.json BASELINE.json "
                 "[--max-drop 0.15]\n");
    return 2;
  }

  std::string fresh_json, base_json;
  if (!read_file(args[0], fresh_json)) {
    std::fprintf(stderr, "esm_bench_guard: cannot read %s\n",
                 args[0].c_str());
    return 2;
  }
  if (!read_file(args[1], base_json)) {
    std::fprintf(stderr, "esm_bench_guard: cannot read %s\n",
                 args[1].c_str());
    return 2;
  }

  int failures = 0;

  // Gate 1: 50k-node scale throughput.
  double base_eps = 0.0;
  if (!extract(base_json, "scale_50k", "events_per_second", base_eps)) {
    std::printf(
        "esm_bench_guard: baseline %s has no scale_50k section — "
        "throughput gate not armed yet\n",
        args[1].c_str());
  } else {
    double fresh_eps = 0.0;
    if (!extract(fresh_json, "scale_50k", "events_per_second", fresh_eps)) {
      std::fprintf(stderr,
                   "esm_bench_guard: %s has no scale_50k section — run "
                   "esm_bench_report with --scale\n",
                   args[0].c_str());
      return 2;
    }
    double base_rss = 0.0, fresh_rss = 0.0;
    extract(base_json, "scale_50k", "peak_rss_mb", base_rss);
    extract(fresh_json, "scale_50k", "peak_rss_mb", fresh_rss);
    const double floor = base_eps * (1.0 - max_drop);
    std::printf(
        "50k point: fresh %.0f ev/s vs baseline %.0f ev/s (floor %.0f, "
        "max drop %.0f%%) | RSS %.0f MB vs %.0f MB\n",
        fresh_eps, base_eps, floor, 100.0 * max_drop, fresh_rss, base_rss);
    if (fresh_eps < floor) {
      std::fprintf(stderr,
                   "esm_bench_guard: REGRESSION — 50k events/s dropped "
                   "%.1f%% (allowed %.0f%%)\n",
                   100.0 * (1.0 - fresh_eps / base_eps), 100.0 * max_drop);
      ++failures;
    }
  }

  // Gate 1b: 50k-node scale throughput through the sharded engine
  // (--shards 4). Same machine-relative argument as gate 1; this one
  // additionally catches barrier-overhead regressions that leave the
  // serial engine untouched.
  double base_seps = 0.0;
  if (!extract(base_json, "scale_50k_sharded4", "events_per_second",
               base_seps)) {
    std::printf(
        "esm_bench_guard: baseline %s has no scale_50k_sharded4 section — "
        "sharded throughput gate not armed yet\n",
        args[1].c_str());
  } else {
    double fresh_seps = 0.0;
    if (!extract(fresh_json, "scale_50k_sharded4", "events_per_second",
                 fresh_seps)) {
      std::fprintf(stderr,
                   "esm_bench_guard: %s has no scale_50k_sharded4 section — "
                   "run esm_bench_report with --scale\n",
                   args[0].c_str());
      return 2;
    }
    const double floor = base_seps * (1.0 - max_drop);
    std::printf(
        "50k sharded point: fresh %.0f ev/s vs baseline %.0f ev/s "
        "(floor %.0f, max drop %.0f%%)\n",
        fresh_seps, base_seps, floor, 100.0 * max_drop);
    if (fresh_seps < floor) {
      std::fprintf(stderr,
                   "esm_bench_guard: REGRESSION — 50k sharded events/s "
                   "dropped %.1f%% (allowed %.0f%%)\n",
                   100.0 * (1.0 - fresh_seps / base_seps), 100.0 * max_drop);
      ++failures;
    }
  }

  // Gate 2: goodput at the 50k-node / 32-publisher heavy-traffic point.
  double base_gp = 0.0;
  if (!extract(base_json, "load_sweep", "goodput_msgs_per_s", base_gp)) {
    std::printf(
        "esm_bench_guard: baseline %s has no load_sweep section — "
        "goodput gate not armed yet\n",
        args[1].c_str());
  } else {
    double fresh_gp = 0.0;
    if (!extract(fresh_json, "load_sweep", "goodput_msgs_per_s", fresh_gp)) {
      std::fprintf(stderr,
                   "esm_bench_guard: %s has no load_sweep section — run "
                   "esm_bench_report with --load-sweep\n",
                   args[0].c_str());
      return 2;
    }
    const double floor = base_gp * (1.0 - max_drop);
    std::printf(
        "load point: fresh %.1f goodput msgs/s vs baseline %.1f "
        "(floor %.1f, max drop %.0f%%)\n",
        fresh_gp, base_gp, floor, 100.0 * max_drop);
    if (fresh_gp < floor) {
      std::fprintf(stderr,
                   "esm_bench_guard: REGRESSION — heavy-traffic goodput "
                   "dropped %.1f%% (allowed %.0f%%)\n",
                   100.0 * (1.0 - fresh_gp / base_gp), 100.0 * max_drop);
      ++failures;
    }
  }

  // Gate 3: backpressure-on goodput at the saturated burst point. Like
  // gate 2 this is a deterministic simulation output; a drop means the
  // backpressure path itself regressed (deferrals too aggressive, drop
  // recovery broken), not that the machine got slower.
  double base_bp = 0.0;
  if (!extract(base_json, "load_sweep_bp", "goodput_on_msgs_per_s",
               base_bp)) {
    std::printf(
        "esm_bench_guard: baseline %s has no load_sweep_bp section — "
        "backpressure gate not armed yet\n",
        args[1].c_str());
  } else {
    double fresh_bp = 0.0;
    if (!extract(fresh_json, "load_sweep_bp", "goodput_on_msgs_per_s",
                 fresh_bp)) {
      std::fprintf(stderr,
                   "esm_bench_guard: %s has no load_sweep_bp section — run "
                   "esm_bench_report with --load-sweep\n",
                   args[0].c_str());
      return 2;
    }
    const double floor = base_bp * (1.0 - max_drop);
    std::printf(
        "backpressure point: fresh %.1f goodput msgs/s vs baseline %.1f "
        "(floor %.1f, max drop %.0f%%)\n",
        fresh_bp, base_bp, floor, 100.0 * max_drop);
    if (fresh_bp < floor) {
      std::fprintf(stderr,
                   "esm_bench_guard: REGRESSION — backpressure-on goodput "
                   "dropped %.1f%% (allowed %.0f%%)\n",
                   100.0 * (1.0 - fresh_bp / base_bp), 100.0 * max_drop);
      ++failures;
    }
  }

  if (failures > 0) return 1;
  std::printf("esm_bench_guard: OK\n");
  return 0;
}
