// esm_trees: offline emergent-structure analysis of a trace CSV.
//
//   esm_run --nodes 200 --strategy ranked --trace run.csv
//   esm_trees run.csv
//   esm_trees --kv run.csv            # key=value lines for scripts
//   esm_trees --window-start 30 --window-end 60 run.csv
//   esm_run ... --trace-stream - | esm_trees -
//
// Reconstructs the per-message first-delivery spanning trees from the
// trace (schema v1 or v2; v1 rows lack sender attribution, so edges are
// only available from v2 traces) and prints their structure metrics:
// eager-hop share, tree-edge latency vs. all payload links, depth, edge
// stability (consecutive-tree Jaccard overlap) and eager-fanout
// concentration. No topology is available offline, so the all-pairs
// overlay baseline and capacity-rank columns are left out — use
// `esm_run --tree-stats` for those.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "obs/tree_stats.hpp"
#include "trace/trace_log.hpp"

namespace {

constexpr const char* kUsage = R"(usage: esm_trees [options] <trace.csv | ->

Reconstructs per-message first-delivery dissemination trees from a trace
CSV written by `esm_run --trace` / `--trace-stream` and reports their
structure metrics. Reads stdin when the file is `-`.

Options:
  --kv                print key=value lines instead of tables
  --window-start S    only analyze messages multicast at or after S seconds
  --window-end S      ...and before S seconds
  --top F             fraction used for the eager-fanout concentration
                      metric (default 0.05)
  --no-phases         skip the per-phase breakdown table
  --help              this text
)";

bool parse_seconds(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != nullptr && *end == '\0' && end != text && out >= 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esm;

  std::string path;
  bool kv = false;
  bool with_phases = true;
  double window_start_s = 0.0;
  double window_end_s = 0.0;
  double top = 0.05;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](double& out) {
      if (i + 1 >= argc || !parse_seconds(argv[i + 1], out)) {
        std::fprintf(stderr, "esm_trees: %s needs a non-negative number\n",
                     arg.c_str());
        return false;
      }
      ++i;
      return true;
    };
    if (arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--kv") {
      kv = true;
    } else if (arg == "--no-phases") {
      with_phases = false;
    } else if (arg == "--window-start") {
      if (!value(window_start_s)) return 2;
    } else if (arg == "--window-end") {
      if (!value(window_end_s)) return 2;
    } else if (arg == "--top") {
      if (!value(top)) return 2;
      if (top <= 0.0 || top > 1.0) {
        std::fprintf(stderr, "esm_trees: --top must be in (0, 1]\n");
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "esm_trees: unknown flag '%s'\n%s", arg.c_str(),
                   kUsage);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "esm_trees: more than one input file\n%s", kUsage);
      return 2;
    }
  }
  if (path.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  trace::TraceLog trace;
  try {
    if (path == "-") {
      trace = trace::TraceLog::read_csv(std::cin);
    } else {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "esm_trees: cannot open %s\n", path.c_str());
        return 1;
      }
      trace = trace::TraceLog::read_csv(in);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esm_trees: %s: %s\n", path.c_str(), e.what());
    return 1;
  }

  obs::TreeStatsOptions options;
  options.window_start =
      static_cast<SimTime>(window_start_s * static_cast<double>(kSecond));
  options.window_end =
      static_cast<SimTime>(window_end_s * static_cast<double>(kSecond));
  const obs::TreeStats stats = obs::analyze_trees(trace, options);

  if (stats.messages == 0) {
    std::fprintf(stderr,
                 "esm_trees: no deliveries in the analysis window (%llu "
                 "deliveries, %llu payload rows in the trace)\n",
                 static_cast<unsigned long long>(trace.delivery_count()),
                 static_cast<unsigned long long>(trace.payload_count()));
    return 1;
  }

  if (kv) {
    std::fputs(harness::format_tree_kv(stats).c_str(), stdout);
    std::printf("tree_eager_child_top_share=%g\ntree_eager_child_top=%g\n",
                stats.eager_child_concentration(top), top);
    return 0;
  }

  harness::Table table("emergent structure: " + path);
  table.header({"metric", "value"});
  table.row({"messages / tree edges", std::to_string(stats.messages) + " / " +
                                          std::to_string(stats.edges)});
  table.row({"orphan deliveries (no parent)",
             std::to_string(stats.orphan_deliveries)});
  table.row({"eager hop share (%)",
             harness::Table::num(100.0 * stats.eager_hop_share(), 2)});
  table.row({"tree-edge latency mean (ms)",
             harness::Table::num(stats.mean_edge_latency_ms(), 2)});
  table.row({"all-link latency mean (ms)",
             harness::Table::num(stats.mean_link_latency_ms(), 2)});
  table.row({"tree depth mean / max",
             harness::Table::num(stats.mean_depth(), 2) + " / " +
                 std::to_string(stats.max_depth())});
  table.row({"edge overlap (Jaccard)",
             harness::Table::num(stats.mean_jaccard(), 3)});
  table.row({"eager fanout: top-" + harness::Table::num(100.0 * top, 0) +
                 "% node share (%)",
             harness::Table::num(
                 100.0 * stats.eager_child_concentration(top), 1)});
  table.print();

  // Phase rows (scenario runs) partition the trace timeline; re-running
  // the analyzer per window shows how the structure shifts across fault
  // phases. Each window is [phase i, phase i+1), the last one unbounded.
  const auto& phases = trace.phases();
  if (with_phases && !phases.empty()) {
    harness::Table per_phase("per-phase structure");
    per_phase.header({"phase", "from s", "msgs", "edges", "eager %",
                      "edge ms", "jaccard"});
    for (std::size_t i = 0; i < phases.size(); ++i) {
      obs::TreeStatsOptions window;
      window.window_start = phases[i].time;
      window.window_end = i + 1 < phases.size() ? phases[i + 1].time : 0;
      const obs::TreeStats p = obs::analyze_trees(trace, window);
      per_phase.row(
          {phases[i].label,
           harness::Table::num(static_cast<double>(phases[i].time) /
                                   static_cast<double>(kSecond), 1),
           std::to_string(p.messages), std::to_string(p.edges),
           harness::Table::num(100.0 * p.eager_hop_share(), 2),
           harness::Table::num(p.mean_edge_latency_ms(), 2),
           harness::Table::num(p.mean_jaccard(), 3)});
    }
    per_phase.print();
  }
  return 0;
}
