// esm_replay: offline analysis of an experiment trace (the paper's §5.3
// workflow — "All messages multicast and delivered are logged for later
// processing").
//
//   esm_run --strategy ttl --u 3 --trace run.csv
//   esm_replay run.csv
//
// Recomputes the headline statistics from the raw event log: per-message
// delivery counts, the latency distribution, per-node payload
// contributions and the eager/requested split — so external tooling (or a
// skeptical reviewer) can verify the harness's aggregates independently.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "harness/table.hpp"
#include "stats/running.hpp"
#include "trace/trace_log.hpp"

int main(int argc, char** argv) {
  using namespace esm;
  if (argc != 2) {
    std::fprintf(stderr, "usage: esm_replay TRACE.csv\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "esm_replay: cannot read %s\n", argv[1]);
    return 1;
  }
  trace::TraceLog log;
  try {
    log = trace::TraceLog::read_csv(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esm_replay: %s\n", e.what());
    return 1;
  }

  // --- per-message deliveries & latency --------------------------------------
  std::map<std::uint32_t, std::uint32_t> deliveries_by_seq;
  stats::Samples latency_ms;
  stats::RunningStat latency_stat;
  for (const auto& d : log.deliveries()) {
    ++deliveries_by_seq[d.seq];
    if (d.node != d.origin) {
      latency_ms.add(to_ms(d.latency));
      latency_stat.add(to_ms(d.latency));
    }
  }
  std::uint32_t min_deliveries = 0xffffffffu, max_deliveries = 0;
  for (const auto& [seq, count] : deliveries_by_seq) {
    min_deliveries = std::min(min_deliveries, count);
    max_deliveries = std::max(max_deliveries, count);
  }

  // --- payload economy --------------------------------------------------------
  std::map<NodeId, std::uint64_t> payload_by_node;
  std::uint64_t eager = 0, requested = 0;
  for (const auto& p : log.payloads()) {
    ++payload_by_node[p.src];
    if (p.eager) {
      ++eager;
    } else {
      ++requested;
    }
  }
  stats::RunningStat per_node;
  for (const auto& [node, count] : payload_by_node) {
    per_node.add(static_cast<double>(count));
  }

  harness::Table table(std::string("trace replay: ") + argv[1]);
  table.header({"statistic", "value"});
  table.row({"messages", std::to_string(deliveries_by_seq.size())});
  table.row({"deliveries", std::to_string(log.deliveries().size())});
  table.row({"deliveries per message (min / max)",
             std::to_string(min_deliveries) + " / " +
                 std::to_string(max_deliveries)});
  table.row({"mean latency (ms)", harness::Table::num(latency_stat.mean(), 1) +
                                      " ± " +
                                      harness::Table::num(
                                          latency_stat.ci95_half_width(), 1)});
  table.row({"latency p50 / p95 / p99 (ms)",
             harness::Table::num(latency_ms.quantile(0.5), 1) + " / " +
                 harness::Table::num(latency_ms.quantile(0.95), 1) + " / " +
                 harness::Table::num(latency_ms.quantile(0.99), 1)});
  table.row({"payload transmissions", std::to_string(log.payloads().size())});
  table.row({"  eager / requested", std::to_string(eager) + " / " +
                                        std::to_string(requested)});
  table.row({"payload per delivery",
             harness::Table::num(log.deliveries().empty()
                                     ? 0.0
                                     : static_cast<double>(
                                           log.payloads().size()) /
                                           static_cast<double>(
                                               log.deliveries().size()),
                                 3)});
  table.row({"sending nodes", std::to_string(payload_by_node.size())});
  table.row({"payload sent per node (mean / max)",
             harness::Table::num(per_node.mean(), 1) + " / " +
                 harness::Table::num(per_node.max(), 0)});
  table.print();
  return 0;
}
