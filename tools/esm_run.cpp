// esm_run: run one experiment from the command line.
//
//   esm_run --strategy hybrid --rho 10 --u 3 --best 0.05 --nodes 100
//   esm_run --strategy flat --pi 0 --loss 0.01 --kv
//
// See `esm_run --help` for every flag.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace esm;
  std::vector<std::string> args(argv + 1, argv + argc);
  // --trace FILE is handled here (file IO is the tool's business, not the
  // parser's).
  std::string trace_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
  }
  std::string error;
  auto options = harness::parse_cli(args, error);
  if (options && !trace_path.empty()) {
    options->config.collect_trace = true;
  }
  if (!options) {
    std::fprintf(stderr, "esm_run: %s\nTry esm_run --help\n", error.c_str());
    return 2;
  }
  if (options->help) {
    std::fputs(harness::cli_help_text().c_str(), stdout);
    return 0;
  }

  harness::ExperimentResult result;
  try {
    result = harness::run_experiment(options->config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esm_run: %s\n", e.what());
    return 1;
  }

  if (!trace_path.empty() && result.trace) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "esm_run: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    result.trace->write_csv(out);
    std::fprintf(stderr, "trace written to %s (%zu deliveries, %zu payloads)\n",
                 trace_path.c_str(), result.trace->deliveries().size(),
                 result.trace->payloads().size());
  }

  if (options->json) {
    std::fputs(harness::format_result_kv(result).c_str(), stdout);
    return 0;
  }

  harness::Table table("experiment: " + options->config.strategy.describe());
  table.header({"metric", "value"});
  table.row({"live nodes", std::to_string(result.live_nodes)});
  table.row({"mean latency (ms)",
             harness::Table::num(result.mean_latency_ms, 1) + " ± " +
                 harness::Table::num(result.latency_ci95_ms, 1)});
  table.row({"p50 / p95 latency (ms)",
             harness::Table::num(result.p50_latency_ms, 1) + " / " +
                 harness::Table::num(result.p95_latency_ms, 1)});
  table.row({"deliveries (% of live)",
             harness::Table::num(100.0 * result.mean_delivery_fraction, 2)});
  table.row({"atomic deliveries (%)",
             harness::Table::num(100.0 * result.atomic_delivery_fraction, 2)});
  table.row({"payload/delivery",
             harness::Table::num(result.payload_per_delivery, 2)});
  table.row({"payload/msg per node (all / low / best)",
             harness::Table::num(result.load_all.payload_per_msg, 2) + " / " +
                 harness::Table::num(result.load_low.payload_per_msg, 2) +
                 " / " +
                 harness::Table::num(result.load_best.payload_per_msg, 2)});
  table.row({"top-5% connection share (%)",
             harness::Table::num(100.0 * result.top5_connection_share, 1)});
  table.row({"payload / control packets",
             std::to_string(result.payload_packets) + " / " +
                 std::to_string(result.control_packets)});
  table.row({"duplicates / requests / lost / buffer drops",
             std::to_string(result.duplicate_payloads) + " / " +
                 std::to_string(result.requests_sent) + " / " +
                 std::to_string(result.packets_lost) + " / " +
                 std::to_string(result.buffer_drops)});
  table.row({"events executed", std::to_string(result.events_executed)});
  table.print();
  return 0;
}
