// esm_run: run one experiment from the command line.
//
//   esm_run --strategy hybrid --rho 10 --u 3 --best 0.05 --nodes 100
//   esm_run --strategy flat --pi 0 --loss 0.01 --kv
//   esm_run --strategy ttl --u 3 --reps 8 --jobs 8   # CI-style replication
//
// --reps N runs N replications of the same configuration with seeds
// seed, seed+1, ..., seed+N-1 (concurrently on --jobs threads) and reports
// mean ± 95% CI over the replications. See `esm_run --help` for every flag.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "expect/expect.hpp"
#include "expect/expect_text.hpp"
#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "harness/scenario_text.hpp"
#include "harness/table.hpp"
#include "load/workload_text.hpp"
#include "stats/running.hpp"

int main(int argc, char** argv) {
  using namespace esm;
  std::vector<std::string> args(argv + 1, argv + argc);
  // --trace FILE, --trace-stream FILE, --metrics-out FILE, --expect FILE
  // and --reps N are handled here (file IO and replication are the tool's
  // business, not the parser's). --trace buffers the run's events and
  // writes them at the end; --trace-stream writes rows while the run
  // executes, so memory stays bounded at large N. `-` means stdout for
  // --metrics-out and --trace-stream.
  std::string trace_path;
  std::string trace_stream_path;
  std::string metrics_path;
  std::vector<std::string> expect_paths;
  std::uint64_t reps = 1;
  for (std::size_t i = 0; i < args.size();) {
    if (args[i] == "--trace" || args[i] == "--trace-stream" ||
        args[i] == "--metrics-out" || args[i] == "--expect" ||
        args[i] == "--reps") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "esm_run: %s requires a value\n",
                     args[i].c_str());
        return 2;
      }
      if (args[i] == "--trace") {
        trace_path = args[i + 1];
      } else if (args[i] == "--trace-stream") {
        trace_stream_path = args[i + 1];
      } else if (args[i] == "--metrics-out") {
        metrics_path = args[i + 1];
      } else if (args[i] == "--expect") {
        expect_paths.push_back(args[i + 1]);
      } else {
        reps = std::strtoull(args[i + 1].c_str(), nullptr, 10);
        if (reps == 0) {
          std::fprintf(stderr, "esm_run: --reps must be >= 1\n");
          return 2;
        }
      }
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else {
      ++i;
    }
  }
  std::string error;
  const unsigned jobs = harness::extract_jobs_flag(args, error);
  if (jobs == 0) {
    std::fprintf(stderr, "esm_run: %s\n", error.c_str());
    return 2;
  }
  auto options = harness::parse_cli(args, error);
  if (options && !trace_path.empty()) {
    options->config.collect_trace = true;
  }
  if (options && !metrics_path.empty()) {
    options->config.collect_metrics = true;
  }
  if (!options) {
    std::fprintf(stderr, "esm_run: %s\nTry esm_run --help\n", error.c_str());
    return 2;
  }
  if (options->help) {
    std::fputs(harness::cli_help_text().c_str(), stdout);
    return 0;
  }
  if (!options->scenario_path.empty()) {
    try {
      options->config.scenario =
          harness::load_scenario_file(options->scenario_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "esm_run: %s\n", e.what());
      return 2;
    }
  }
  if (!options->workload_path.empty()) {
    try {
      options->config.workload =
          load::load_workload_file(options->workload_path);
      options->config.workload.validate(options->config.num_nodes);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "esm_run: %s\n", e.what());
      return 2;
    }
  }
  if (reps > 1 && (!trace_path.empty() || !trace_stream_path.empty())) {
    std::fprintf(stderr,
                 "esm_run: --trace/--trace-stream are single-run; drop "
                 "--reps\n");
    return 2;
  }
  if (reps > 1 && !expect_paths.empty()) {
    std::fprintf(stderr,
                 "esm_run: --expect evaluates a single run; drop --reps\n");
    return 2;
  }
  if (!trace_path.empty() && !trace_stream_path.empty()) {
    std::fprintf(stderr,
                 "esm_run: pick one of --trace (buffered) or --trace-stream "
                 "(streaming)\n");
    return 2;
  }
  if (!trace_stream_path.empty() && options->config.collect_tree_stats) {
    std::fprintf(stderr,
                 "esm_run: --tree-stats needs the buffered trace; use "
                 "--trace instead of --trace-stream\n");
    return 2;
  }
  if (metrics_path == "-" && trace_stream_path == "-") {
    std::fprintf(stderr,
                 "esm_run: --metrics-out - and --trace-stream - both write "
                 "to stdout; pick one\n");
    return 2;
  }
  if (!expect_paths.empty() && trace_stream_path == "-") {
    std::fprintf(stderr,
                 "esm_run: the --expect report and --trace-stream - share "
                 "stdout; stream the trace to a file instead\n");
    return 2;
  }

  expect::ExpectationSet expectations;
  for (const std::string& path : expect_paths) {
    try {
      expectations.merge(expect::load_expectation_file(path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "esm_run: %s\n", e.what());
      return 2;
    }
  }
  if (expectations.needs_trace()) {
    if (!trace_stream_path.empty()) {
      std::fprintf(stderr,
                   "esm_run: --expect trace predicates need the buffered "
                   "trace; use --trace instead of --trace-stream\n");
      return 2;
    }
    if (options->config.shards >= 2) {
      std::fprintf(stderr,
                   "esm_run: --expect trace predicates (deliver/latency/"
                   "structure/jaccard/tree) need --shards 1; scalar metric "
                   "and recovery bounds work at any shard count\n");
      return 2;
    }
    // Trace-based expectations imply buffered trace collection.
    options->config.collect_trace = true;
  }

  std::ofstream trace_stream;
  if (!trace_stream_path.empty()) {
    if (trace_stream_path == "-") {
      options->config.trace_sink = &std::cout;
    } else {
      trace_stream.open(trace_stream_path);
      if (!trace_stream) {
        std::fprintf(stderr, "esm_run: cannot write %s\n",
                     trace_stream_path.c_str());
        return 1;
      }
      options->config.trace_sink = &trace_stream;
    }
  }
  // Exactly one machine-readable stream may own stdout; the human summary
  // moves aside when trace rows or the metrics JSON are sent there.
  const bool suppress_stdout_summary =
      trace_stream_path == "-" || metrics_path == "-";

  // Renders the emergent-structure summary (one row per headline metric).
  auto print_tree_table = [](const obs::TreeStats& t) {
    harness::Table tree("emergent structure (first-delivery trees)");
    tree.header({"metric", "value"});
    tree.row({"messages / tree edges",
              std::to_string(t.messages) + " / " + std::to_string(t.edges)});
    tree.row({"eager hop share (%)",
              harness::Table::num(100.0 * t.eager_hop_share(), 2)});
    tree.row({"tree-edge latency mean (ms)",
              harness::Table::num(t.mean_edge_latency_ms(), 2)});
    tree.row({"overlay-link latency mean (ms)",
              harness::Table::num(t.mean_link_latency_ms(), 2)});
    if (t.overlay_mean_link_us > 0.0) {
      tree.row({"overlay all-pairs mean (ms)",
                harness::Table::num(t.overlay_mean_link_ms(), 2)});
    }
    tree.row({"tree depth mean / max",
              harness::Table::num(t.mean_depth(), 2) + " / " +
                  std::to_string(t.max_depth())});
    if (t.stretch_pct.count() > 0) {
      tree.row({"latency stretch mean (%)",
                harness::Table::num(t.mean_stretch(), 1)});
    }
    tree.row({"edge overlap (Jaccard)",
              harness::Table::num(t.mean_jaccard(), 3)});
    if (t.has_rank_info) {
      tree.row({"interior nodes in top ranks (%)",
                harness::Table::num(100.0 * t.interior_top_share(), 1) +
                    " (top " +
                    harness::Table::num(100.0 * t.top_fraction, 0) + "%)"});
      tree.row({"eager edges from top ranks (%)",
                harness::Table::num(100.0 * t.eager_from_top_share(), 1)});
    }
    tree.row({"eager fanout: top-5% node share (%)",
              harness::Table::num(100.0 * t.eager_child_concentration(0.05),
                                  1)});
    tree.print();
  };

  // Writes the merged metrics document. Merging happens in input (seed)
  // order and every merge op is associative/commutative, so the file is
  // byte-identical at any --jobs count.
  auto write_metrics =
      [&](const obs::RunMetrics& merged,
          const std::vector<std::vector<stats::PhaseReport>>& phase_runs) {
        if (metrics_path == "-") {
          std::cout << harness::format_metrics_json(merged, phase_runs);
          return true;
        }
        std::ofstream out(metrics_path);
        if (!out) {
          std::fprintf(stderr, "esm_run: cannot write %s\n",
                       metrics_path.c_str());
          return false;
        }
        out << harness::format_metrics_json(merged, phase_runs);
        std::fprintf(stderr, "metrics written to %s\n", metrics_path.c_str());
        return true;
      };

  if (reps > 1) {
    std::vector<harness::ExperimentConfig> configs(reps, options->config);
    for (std::uint64_t r = 0; r < reps; ++r) configs[r].seed += r;
    std::vector<harness::ExperimentResult> results;
    try {
      results = harness::run_experiments(configs, jobs);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "esm_run: %s\n", e.what());
      return 1;
    }
    if (!metrics_path.empty()) {
      obs::RunMetrics merged;
      std::vector<std::vector<stats::PhaseReport>> phase_runs;
      phase_runs.reserve(results.size());
      bool first = true;
      for (const auto& r : results) {
        phase_runs.push_back(r.phase_reports);
        if (!r.metrics) continue;
        if (first) {
          merged = *r.metrics;
          first = false;
        } else {
          merged.merge(*r.metrics);
        }
      }
      if (!write_metrics(merged, phase_runs)) return 1;
    }
    stats::RunningStat latency, payload, deliveries, top5;
    for (const auto& r : results) {
      latency.add(r.mean_latency_ms);
      payload.add(r.load_all.payload_per_msg);
      deliveries.add(100.0 * r.mean_delivery_fraction);
      top5.add(100.0 * r.top5_connection_share);
    }
    // Tree stats merge in seed order (results come back in config order
    // regardless of --jobs), so the combined numbers are deterministic.
    std::shared_ptr<obs::TreeStats> tree_merged;
    for (const auto& r : results) {
      if (!r.tree_stats) continue;
      if (!tree_merged) {
        tree_merged = std::make_shared<obs::TreeStats>(*r.tree_stats);
      } else {
        tree_merged->merge(*r.tree_stats);
      }
    }
    if (options->json) {
      std::printf("reps=%llu\n", static_cast<unsigned long long>(reps));
      std::printf("mean_latency_ms=%g\nmean_latency_ms_ci95=%g\n",
                  latency.mean(), latency.ci95_half_width());
      std::printf("payload_per_msg_all=%g\npayload_per_msg_all_ci95=%g\n",
                  payload.mean(), payload.ci95_half_width());
      std::printf(
          "mean_delivery_fraction=%g\nmean_delivery_fraction_ci95=%g\n",
          deliveries.mean() / 100.0, deliveries.ci95_half_width() / 100.0);
      std::printf("top5_connection_share=%g\ntop5_connection_share_ci95=%g\n",
                  top5.mean() / 100.0, top5.ci95_half_width() / 100.0);
      if (tree_merged) {
        std::fputs(harness::format_tree_kv(*tree_merged).c_str(), stdout);
      }
      return 0;
    }
    harness::Table table("replications: " +
                         options->config.strategy.describe());
    table.header({"seed", "latency ms", "payload/msg", "deliveries %",
                  "top5 %"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      table.row({std::to_string(configs[i].seed),
                 harness::Table::num(r.mean_latency_ms, 1),
                 harness::Table::num(r.load_all.payload_per_msg, 2),
                 harness::Table::num(100.0 * r.mean_delivery_fraction, 2),
                 harness::Table::num(100.0 * r.top5_connection_share, 1)});
    }
    table.row({"mean ± ci95",
               harness::Table::num(latency.mean(), 1) + " ± " +
                   harness::Table::num(latency.ci95_half_width(), 1),
               harness::Table::num(payload.mean(), 2) + " ± " +
                   harness::Table::num(payload.ci95_half_width(), 2),
               harness::Table::num(deliveries.mean(), 2) + " ± " +
                   harness::Table::num(deliveries.ci95_half_width(), 2),
               harness::Table::num(top5.mean(), 1) + " ± " +
                   harness::Table::num(top5.ci95_half_width(), 1)});
    table.print();
    if (tree_merged) print_tree_table(*tree_merged);
    return 0;
  }

  harness::ExperimentResult result;
  try {
    result = harness::run_experiment(options->config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esm_run: %s\n", e.what());
    return 1;
  }

  if (!trace_stream_path.empty() && result.trace) {
    if (trace_stream_path == "-") {
      std::cout.flush();
    } else {
      trace_stream.flush();
    }
    std::fprintf(
        stderr, "trace streamed to %s (%llu deliveries, %llu payloads)\n",
        trace_stream_path == "-" ? "stdout" : trace_stream_path.c_str(),
        static_cast<unsigned long long>(result.trace->delivery_count()),
        static_cast<unsigned long long>(result.trace->payload_count()));
  }

  if (!trace_path.empty() && result.trace) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "esm_run: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    result.trace->write_csv(out);
    std::fprintf(stderr, "trace written to %s (%zu deliveries, %zu payloads)\n",
                 trace_path.c_str(), result.trace->deliveries().size(),
                 result.trace->payloads().size());
  }

  // Expectation evaluation runs before the metrics write so the expect.*
  // counters land in the esm-metrics-v1 JSON. Exit 3 on any violation.
  expect::Report expect_report;
  const bool have_expect = !expectations.empty();
  if (have_expect) {
    expect::EvalInput in;
    in.trace = result.trace.get();
    if (!result.phase_reports.empty()) in.phases = &result.phase_reports;
    in.metrics = result.metrics.get();
    in.scalars = expect::parse_scalars(harness::format_result_kv(result));
    in.ranked = result.best_nodes;
    in.expected_deliveries = result.expected_deliveries;
    in.default_expected = result.live_nodes;
    in.round = options->config.retransmission_period;
    expect_report = expect::evaluate(expectations, in);
    if (result.metrics) {
      expect::add_report_counters(expect_report, result.metrics->aggregate);
    }
  }
  const int exit_code = have_expect && !expect_report.ok() ? 3 : 0;

  if (!metrics_path.empty() && result.metrics) {
    if (!write_metrics(*result.metrics, {result.phase_reports})) return 1;
  }

  if (options->json) {
    if (!suppress_stdout_summary) {
      std::fputs(harness::format_result_kv(result).c_str(), stdout);
      if (have_expect) {
        std::fputs(expect::format_report_kv(expect_report).c_str(), stdout);
      }
    }
    return exit_code;
  }
  if (suppress_stdout_summary) return exit_code;

  harness::Table table("experiment: " + options->config.strategy.describe());
  table.header({"metric", "value"});
  table.row({"live nodes", std::to_string(result.live_nodes)});
  table.row({"mean latency (ms)",
             harness::Table::num(result.mean_latency_ms, 1) + " ± " +
                 harness::Table::num(result.latency_ci95_ms, 1)});
  table.row({"p50 / p95 latency (ms)",
             harness::Table::num(result.p50_latency_ms, 1) + " / " +
                 harness::Table::num(result.p95_latency_ms, 1)});
  table.row({"deliveries (% of live)",
             harness::Table::num(100.0 * result.mean_delivery_fraction, 2)});
  table.row({"atomic deliveries (%)",
             harness::Table::num(100.0 * result.atomic_delivery_fraction, 2)});
  table.row({"payload/delivery",
             harness::Table::num(result.payload_per_delivery, 2)});
  table.row({"payload/msg per node (all / low / best)",
             harness::Table::num(result.load_all.payload_per_msg, 2) + " / " +
                 harness::Table::num(result.load_low.payload_per_msg, 2) +
                 " / " +
                 harness::Table::num(result.load_best.payload_per_msg, 2)});
  table.row({"top-5% connection share (%)",
             harness::Table::num(100.0 * result.top5_connection_share, 1)});
  table.row({"payload / control packets",
             std::to_string(result.payload_packets) + " / " +
                 std::to_string(result.control_packets)});
  table.row({"duplicates / requests / lost / buffer drops",
             std::to_string(result.duplicate_payloads) + " / " +
                 std::to_string(result.requests_sent) + " / " +
                 std::to_string(result.packets_lost) + " / " +
                 std::to_string(result.buffer_drops)});
  table.row({"iwant retries / gave up / stalled",
             std::to_string(result.iwant_retries) + " / " +
                 std::to_string(result.recovery_gave_up) + " / " +
                 std::to_string(result.recovery_stalled)});
  table.row({"events executed", std::to_string(result.events_executed)});
  table.print();

  if (result.offered_msgs > 0) {
    harness::Table load("offered load and goodput");
    load.header({"metric", "value"});
    load.row({"offered msgs (rate /s)",
              std::to_string(result.offered_msgs) + " (" +
                  harness::Table::num(result.offered_msgs_per_s, 1) + ")"});
    load.row({"goodput (first deliveries /s)",
              harness::Table::num(result.goodput_msgs_per_s, 1)});
    load.row({"redundancy (payload tx / delivery)",
              harness::Table::num(result.redundancy_ratio, 2)});
    load.row({"saturation knee (ms after start)",
              result.knee_time_ms < 0.0
                  ? std::string("none")
                  : harness::Table::num(result.knee_time_ms, 0)});
    if (result.offtopic_deliveries > 0) {
      load.row({"off-topic deliveries",
                std::to_string(result.offtopic_deliveries)});
    }
    if (result.egress_serialized_packets > 0) {
      load.row({"egress queue delay mean / max (ms)",
                harness::Table::num(result.egress_queue_delay_mean_ms, 2) +
                    " / " +
                    harness::Table::num(result.egress_queue_delay_max_ms, 2)});
      load.row({"egress peak depth / queued bytes",
                std::to_string(result.egress_peak_depth) + " / " +
                    std::to_string(result.egress_peak_queued_bytes)});
    }
    load.print();
  }

  if (result.tree_stats) print_tree_table(*result.tree_stats);

  if (!result.phase_reports.empty()) {
    const bool tree_cols = result.tree_stats != nullptr;
    harness::Table phases("scenario phases (" +
                          std::to_string(result.faults_injected) +
                          " fault events)");
    std::vector<std::string> phase_header = {
        "phase",      "window s", "msgs", "reliability %", "latency ms",
        "payload/msg", "top5 %"};
    if (tree_cols) {
      phase_header.insert(phase_header.end(),
                          {"tree edges", "eager %", "edge ms"});
    }
    phases.header(phase_header);
    for (const auto& p : result.phase_reports) {
      std::vector<std::string> row = {
          p.label,
          harness::Table::num(to_ms(p.start) / 1000.0, 1) + "-" +
              harness::Table::num(to_ms(p.end) / 1000.0, 1),
          std::to_string(p.messages),
          harness::Table::num(100.0 * p.reliability, 2),
          harness::Table::num(p.mean_latency_ms, 1),
          harness::Table::num(p.payload_per_msg, 2),
          harness::Table::num(100.0 * p.top5_connection_share, 1)};
      if (tree_cols) {
        row.push_back(std::to_string(p.tree_edges));
        row.push_back(harness::Table::num(100.0 * p.tree_eager_hop_share, 2));
        row.push_back(harness::Table::num(p.tree_mean_edge_latency_ms, 2));
      }
      phases.row(row);
    }
    phases.print();
  }

  if (have_expect) {
    harness::Table expects("expectations: " + std::to_string(expect_report.passed) +
                           " passed, " + std::to_string(expect_report.failed) +
                           " failed, " + std::to_string(expect_report.skipped) +
                           " skipped");
    expects.header({"status", "where", "expectation", "observed", "bound",
                    "detail"});
    for (const expect::Outcome& out : expect_report.outcomes) {
      expects.row({expect::to_string(out.status),
                   (out.file.empty() ? std::string() : out.file + ":") +
                       std::to_string(out.line),
                   out.text, harness::Table::num(out.observed, 4),
                   harness::Table::num(out.bound, 4), out.detail});
    }
    expects.print();
  }
  return exit_code;
}
