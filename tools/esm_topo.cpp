// esm_topo: generate and inspect the synthetic transit-stub internet.
//
//   esm_topo --clients 100 --seed 2007            # §5.1-style statistics
//   esm_topo --clients 100 --csv coords           # client coordinates
//   esm_topo --clients 100 --csv latency          # pairwise latency matrix
//   esm_topo --clients 100 --csv histogram        # latency distribution
//
// The CSV modes feed external plotting (the Fig. 4 style network renders).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "harness/table.hpp"
#include "net/path_model.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

int main(int argc, char** argv) {
  using namespace esm;

  std::uint32_t clients = 100;
  std::uint64_t seed = 2007;
  std::string csv;
  net::PathModelKind path_kind = net::PathModelKind::automatic;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--clients") {
      const char* v = value();
      if (v == nullptr) {
        std::fprintf(stderr, "esm_topo: --clients needs a value\n");
        return 2;
      }
      clients = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--seed") {
      const char* v = value();
      if (v == nullptr) {
        std::fprintf(stderr, "esm_topo: --seed needs a value\n");
        return 2;
      }
      seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--csv") {
      const char* v = value();
      if (v == nullptr) {
        std::fprintf(stderr, "esm_topo: --csv needs a mode\n");
        return 2;
      }
      csv = v;
    } else if (flag == "--path-model") {
      const char* v = value();
      if (v == nullptr) {
        std::fprintf(stderr, "esm_topo: --path-model needs a value\n");
        return 2;
      }
      if (std::strcmp(v, "dense") == 0) {
        path_kind = net::PathModelKind::dense;
      } else if (std::strcmp(v, "ondemand") == 0) {
        path_kind = net::PathModelKind::ondemand;
      } else if (std::strcmp(v, "auto") == 0) {
        path_kind = net::PathModelKind::automatic;
      } else {
        std::fprintf(stderr, "esm_topo: unknown path model %s\n", v);
        return 2;
      }
    } else if (flag == "--help") {
      std::puts(
          "esm_topo --clients N --seed S [--csv coords|latency|histogram]"
          " [--path-model dense|ondemand|auto]");
      return 0;
    } else {
      std::fprintf(stderr, "esm_topo: unknown flag %s\n", flag.c_str());
      return 2;
    }
  }

  net::TopologyParams params;
  params.num_clients = clients;
  const net::Topology topo = net::generate_topology(params, seed);
  const std::unique_ptr<net::PathModel> path_model =
      net::make_path_model(topo, path_kind);
  const net::PathModel& metrics = *path_model;

  if (csv == "coords") {
    std::puts("client,x,y");
    for (NodeId c = 0; c < clients; ++c) {
      std::printf("%u,%.5f,%.5f\n", c, topo.client_coords[c].x,
                  topo.client_coords[c].y);
    }
    return 0;
  }
  if (csv == "latency") {
    std::puts("src,dst,latency_us,hops");
    for (NodeId a = 0; a < clients; ++a) {
      for (NodeId b = 0; b < clients; ++b) {
        if (a == b) continue;
        std::printf("%u,%u,%lld,%u\n", a, b,
                    static_cast<long long>(metrics.latency(a, b)),
                    metrics.hops(a, b));
      }
    }
    return 0;
  }
  if (csv == "histogram") {
    std::puts("latency_ms_bucket,pairs");
    for (int bucket = 0; bucket < 30; ++bucket) {
      const SimTime lo = bucket * 5 * kMillisecond;
      const SimTime hi = lo + 5 * kMillisecond - 1;
      const double frac = metrics.latency_fraction(lo, hi);
      const auto pairs = static_cast<long long>(
          frac * static_cast<double>(clients) * (clients - 1));
      std::printf("%d-%d,%lld\n", bucket * 5, bucket * 5 + 5, pairs);
    }
    return 0;
  }
  if (!csv.empty()) {
    std::fprintf(stderr, "esm_topo: unknown csv mode %s\n", csv.c_str());
    return 2;
  }

  harness::Table table("topology: " + std::to_string(clients) + " clients, " +
                       std::to_string(params.num_underlay_vertices) +
                       " underlay vertices, seed " + std::to_string(seed));
  table.header({"metric", "value", "paper (§5.1)"});
  table.row({"mean hop distance", harness::Table::num(metrics.mean_hops(), 2),
             "5.54"});
  table.row({"pairs within 5-6 hops (%)",
             harness::Table::num(100.0 * metrics.hop_fraction(5, 6), 2),
             "74.28"});
  table.row({"mean end-to-end latency (ms)",
             harness::Table::num(metrics.mean_latency_us() / 1000.0, 2),
             "49.83"});
  table.row({"pairs within 39-60 ms (%)",
             harness::Table::num(100.0 * metrics.latency_fraction(
                                             39 * kMillisecond,
                                             60 * kMillisecond),
                                 2),
             "50.00"});
  table.row({"p10 / p50 / p90 latency (ms)",
             harness::Table::num(to_ms(metrics.latency_quantile(0.1)), 1) +
                 " / " +
                 harness::Table::num(to_ms(metrics.latency_quantile(0.5)), 1) +
                 " / " +
                 harness::Table::num(to_ms(metrics.latency_quantile(0.9)), 1),
             "-"});
  table.row({"underlay edges", std::to_string(topo.graph.num_edges()), "-"});
  table.print();
  return 0;
}
