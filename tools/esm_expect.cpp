// esm_expect: offline expectation checker over saved trace CSVs.
//
//   esm_run --trace run.csv ... && esm_expect --expect steady.exp run.csv
//   esm_run --trace-stream - ... | esm_expect --expect steady.exp -
//
// Replays a trace written by esm_run --trace/--trace-stream (schema v2, or
// v1 with documented defaults) through the same expectation engine as
// `esm_run --expect`. Offline evaluation has no run context, so:
//   * the delivery-fraction denominator defaults to the largest audience
//     observed for any message in the trace (override with --nodes N);
//   * one gossip round defaults to 400 ms (override with --round-ms);
//   * `metric` bounds, histogram recovery bounds (max_iwants/max_ms) and
//     rank=oracle structure assertions report `skip` — they need the
//     online run's scalars, lifecycle registry or capacity ranking;
//   * v1 traces carry no parent attribution: structure/jaccard/tree-shape
//     checks report `skip`, delivery/latency bounds still evaluate.
//
// Exit codes: 0 all pass, 1 runtime error, 2 usage, 3 violations.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "expect/expect.hpp"
#include "expect/expect_text.hpp"
#include "trace/trace_log.hpp"

namespace {

void usage() {
  std::fputs(
      R"(usage: esm_expect --expect FILE [options] TRACE
Evaluate declarative expectations (.exp) against a saved trace CSV.

  TRACE               trace CSV from esm_run --trace/--trace-stream; - = stdin
  --expect FILE       expectation file (repeatable; files compose)
  --nodes N           delivery-fraction denominator (default: largest
                      per-message audience observed in the trace)
  --round-ms MS       gossip round length for bounds in rounds (default 400)
  --kv                key=value report instead of readable lines

Exit codes: 0 = all pass, 1 = runtime error, 2 = usage, 3 = violations.
)",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esm;
  std::vector<std::string> expect_paths;
  std::string trace_path;
  std::uint32_t nodes = 0;
  double round_ms = 400.0;
  bool kv = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--expect" || arg == "--nodes" || arg == "--round-ms") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "esm_expect: %s requires a value\n", arg.c_str());
        return 2;
      }
      const std::string& value = args[++i];
      if (arg == "--expect") {
        expect_paths.push_back(value);
      } else if (arg == "--nodes") {
        char* end = nullptr;
        const unsigned long v = std::strtoul(value.c_str(), &end, 10);
        if (end != value.c_str() + value.size() || v == 0 || v > 0xffffffffUL) {
          std::fprintf(stderr, "esm_expect: bad --nodes '%s'\n", value.c_str());
          return 2;
        }
        nodes = static_cast<std::uint32_t>(v);
      } else {
        char* end = nullptr;
        round_ms = std::strtod(value.c_str(), &end);
        if (end != value.c_str() + value.size() || round_ms <= 0.0) {
          std::fprintf(stderr, "esm_expect: bad --round-ms '%s'\n",
                       value.c_str());
          return 2;
        }
      }
    } else if (arg == "--kv") {
      kv = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "esm_expect: unknown flag %s\n", arg.c_str());
      usage();
      return 2;
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      std::fprintf(stderr, "esm_expect: more than one trace path\n");
      return 2;
    }
  }
  if (expect_paths.empty() || trace_path.empty()) {
    usage();
    return 2;
  }

  expect::ExpectationSet expectations;
  for (const std::string& path : expect_paths) {
    try {
      expectations.merge(expect::load_expectation_file(path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "esm_expect: %s\n", e.what());
      return 2;
    }
  }

  trace::TraceLog trace;
  try {
    if (trace_path == "-") {
      trace = trace::TraceLog::read_csv(std::cin);
    } else {
      std::ifstream file(trace_path);
      if (!file) {
        std::fprintf(stderr, "esm_expect: cannot open %s\n",
                     trace_path.c_str());
        return 1;
      }
      trace = trace::TraceLog::read_csv(file);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esm_expect: %s: %s\n", trace_path.c_str(), e.what());
    return 1;
  }

  expect::EvalInput in;
  in.trace = &trace;
  in.default_expected = nodes;
  in.round = static_cast<SimTime>(round_ms * static_cast<double>(kMillisecond));
  const expect::Report report = expect::evaluate(expectations, in);

  if (kv) {
    std::fputs(expect::format_report_kv(report).c_str(), stdout);
  } else {
    for (const expect::Outcome& out : report.outcomes) {
      std::printf("%-4s %s:%zu  %s  (observed %g, bound %g)%s%s\n",
                  expect::to_string(out.status),
                  out.file.empty() ? "<expect>" : out.file.c_str(), out.line,
                  out.text.c_str(), out.observed, out.bound,
                  out.detail.empty() ? "" : "  -- ",
                  out.detail.c_str());
    }
    std::printf("expectations: %zu checked, %zu passed, %zu failed, %zu "
                "skipped\n",
                report.checked(), report.passed, report.failed,
                report.skipped);
  }
  return report.ok() ? 0 : 3;
}
