// esm_sweep: sweep one parameter over a list of values and print the
// resulting latency/bandwidth/reliability series — a generic version of
// the figure benches for user-chosen configurations.
//
//   esm_sweep --param pi --values 0,0.2,0.5,1
//   esm_sweep --param noise --values 0,0.25,0.5,1 --strategy ranked
//   esm_sweep --param kill --values 0,0.2,0.4 --strategy ttl --u 3 --csv
//
// Any esm_run flag is accepted as the base configuration. --csv emits
// machine-readable rows instead of the table. Points run concurrently on
// --jobs worker threads (default: hardware concurrency); each point owns
// its Simulator and RNG streams, so output is byte-identical to --jobs 1.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "harness/scenario_text.hpp"
#include "harness/table.hpp"
#include "load/workload_text.hpp"

int main(int argc, char** argv) {
  using namespace esm;
  std::vector<std::string> args(argv + 1, argv + argc);

  std::string param, values_text;
  bool csv = false;
  for (std::size_t i = 0; i < args.size();) {
    if (args[i] == "--param" || args[i] == "--values") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "esm_sweep: %s requires a value\n",
                     args[i].c_str());
        return 2;
      }
      (args[i] == "--param" ? param : values_text) = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (args[i] == "--csv") {
      csv = true;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  std::string error;
  const unsigned jobs = harness::extract_jobs_flag(args, error);
  if (jobs == 0) {
    std::fprintf(stderr, "esm_sweep: %s\n", error.c_str());
    return 2;
  }
  if (param.empty() || values_text.empty()) {
    std::fprintf(stderr,
                 "esm_sweep: --param NAME and --values V1,V2,... are "
                 "required.\nSweepable: pi u rho best noise t0-ms loss kill "
                 "churn batch-ms interval-ms period-ms retry-rounds fanout "
                 "nodes messages seed shards senders rate duration-ms "
                 "burst-on-ms burst-off-ms.\nAll esm_run flags form the base "
                 "configuration;\n"
                 "--jobs N runs points concurrently (default: all cores).\n");
    return 2;
  }

  auto base = harness::parse_cli(args, error);
  if (!base) {
    std::fprintf(stderr, "esm_sweep: %s\n", error.c_str());
    return 2;
  }
  if (!base->scenario_path.empty()) {
    try {
      base->config.scenario =
          harness::load_scenario_file(base->scenario_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "esm_sweep: %s\n", e.what());
      return 2;
    }
  }
  if (!base->workload_path.empty()) {
    try {
      base->config.workload = load::load_workload_file(base->workload_path);
      base->config.workload.validate(base->config.num_nodes);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "esm_sweep: %s\n", e.what());
      return 2;
    }
  }
  const auto values = harness::parse_value_list(values_text, error);
  if (!values) {
    std::fprintf(stderr, "esm_sweep: %s\n", error.c_str());
    return 2;
  }

  std::vector<harness::ExperimentConfig> configs;
  configs.reserve(values->size());
  for (const double v : *values) {
    harness::ExperimentConfig config = base->config;
    if (!harness::apply_sweep_param(config, param, v, error)) {
      std::fprintf(stderr, "esm_sweep: %s\n", error.c_str());
      return 2;
    }
    configs.push_back(config);
  }

  std::vector<harness::ExperimentResult> results;
  try {
    results = harness::run_experiments(configs, jobs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esm_sweep: %s\n", e.what());
    return 1;
  }

  // With --tree-stats each point also reports the emergent-structure
  // series: eager-hop share, tree-edge latency vs the all-pairs overlay
  // baseline, and consecutive-tree Jaccard overlap.
  const bool tree = base->config.collect_tree_stats;
  // Workload sweeps (and sweeps over senders/rate starting from one) also
  // report the offered-load/goodput series — the saturation-knee axes.
  bool load_cols = !base->config.workload.empty();
  for (const auto& config : configs) {
    load_cols = load_cols || !config.workload.empty();
  }

  harness::Table table("sweep of " + param + " (" +
                       base->config.strategy.describe() + ")");
  std::vector<std::string> header = {param, "latency ms", "p95 ms",
                                     "payload/msg", "deliveries %", "top5 %",
                                     "retries", "stalled"};
  if (load_cols) {
    header.insert(header.end(),
                  {"offered/s", "goodput/s", "redund", "knee ms"});
  }
  if (tree) {
    header.insert(header.end(),
                  {"eager %", "edge ms", "overlay ms", "jaccard"});
  }
  table.header(header);
  if (csv) {
    std::printf(
        "%s,latency_ms,p95_ms,payload_per_msg,deliveries,top5_share,"
        "iwant_retries,recovery_stalled%s%s\n",
        param.c_str(),
        load_cols ? ",offered_msgs_per_s,goodput_msgs_per_s,redundancy_ratio,"
                    "knee_time_ms"
                  : "",
        tree ? ",tree_eager_hop_share,tree_edge_latency_ms,"
               "tree_overlay_latency_ms,tree_mean_jaccard"
             : "");
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double v = (*values)[i];
    const harness::ExperimentResult& r = results[i];
    if (csv) {
      std::printf("%g,%.3f,%.3f,%.3f,%.5f,%.5f,%llu,%llu", v,
                  r.mean_latency_ms, r.p95_latency_ms,
                  r.load_all.payload_per_msg, r.mean_delivery_fraction,
                  r.top5_connection_share,
                  static_cast<unsigned long long>(r.iwant_retries),
                  static_cast<unsigned long long>(r.recovery_stalled));
      if (load_cols) {
        std::printf(",%.3f,%.3f,%.3f,%.0f", r.offered_msgs_per_s,
                    r.goodput_msgs_per_s, r.redundancy_ratio, r.knee_time_ms);
      }
      if (tree && r.tree_stats) {
        std::printf(",%.5f,%.3f,%.3f,%.5f", r.tree_stats->eager_hop_share(),
                    r.tree_stats->mean_edge_latency_ms(),
                    r.tree_stats->overlay_mean_link_ms(),
                    r.tree_stats->mean_jaccard());
      } else if (tree) {
        std::printf(",,,,");
      }
      std::printf("\n");
    } else {
      std::vector<std::string> row = {
          harness::Table::num(v, 3),
          harness::Table::num(r.mean_latency_ms, 0),
          harness::Table::num(r.p95_latency_ms, 0),
          harness::Table::num(r.load_all.payload_per_msg, 2),
          harness::Table::num(100.0 * r.mean_delivery_fraction, 2),
          harness::Table::num(100.0 * r.top5_connection_share, 1),
          std::to_string(r.iwant_retries),
          std::to_string(r.recovery_stalled)};
      if (load_cols) {
        row.push_back(harness::Table::num(r.offered_msgs_per_s, 1));
        row.push_back(harness::Table::num(r.goodput_msgs_per_s, 1));
        row.push_back(harness::Table::num(r.redundancy_ratio, 2));
        row.push_back(r.knee_time_ms < 0.0
                          ? std::string("none")
                          : harness::Table::num(r.knee_time_ms, 0));
      }
      if (tree) {
        if (r.tree_stats) {
          row.push_back(harness::Table::num(
              100.0 * r.tree_stats->eager_hop_share(), 2));
          row.push_back(
              harness::Table::num(r.tree_stats->mean_edge_latency_ms(), 2));
          row.push_back(
              harness::Table::num(r.tree_stats->overlay_mean_link_ms(), 2));
          row.push_back(harness::Table::num(r.tree_stats->mean_jaccard(), 3));
        } else {
          row.insert(row.end(), {"-", "-", "-", "-"});
        }
      }
      table.row(row);
    }
  }
  if (!csv) table.print();
  return 0;
}
